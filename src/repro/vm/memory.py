"""Flat byte-addressable VM memory.

Globals are laid out at load time; each call frame gets a bump-allocated
stack region for allocas; ``malloc`` draws from a heap region. Scalar
loads/stores go through numpy structured views for correct fixed-width
semantics.

Layout (addresses are plain ints; address 0 is reserved as NULL):

    [0 .. globals_end)     globals
    [globals_end .. heap)  stack (grows upward, per-frame bump regions)
    [heap .. size)         heap (bump allocator, no free-list)

Gives the interpreter — the paper's VM stand-in (Figure 1) — concrete
C memory semantics so the benchmark kernels behave like their native
counterparts.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.ir.types import Type, wrap_int
from repro.ir.values import GlobalVariable


class MemoryError_(Exception):
    """VM memory fault (out-of-range access, overflow)."""


_STRUCT_FMT = {
    ("int", 1): "b",
    ("int", 8): "b",
    ("int", 16): "h",
    ("int", 32): "i",
    ("int", 64): "q",
    ("float", 32): "f",
    ("float", 64): "d",
    ("ptr", 64): "q",
}


class Memory:
    """Flat memory with stack and heap bump allocators."""

    def __init__(self, size: int = 1 << 22, stack_size: int = 1 << 20) -> None:
        self.size = size
        self.data = bytearray(size)
        self._globals_end = 8  # keep NULL + a small red zone
        self._stack_base = 0
        self._stack_ptr = 0
        self._heap_base = 0
        self._heap_ptr = 0
        self._stack_size = stack_size
        self._finalized = False

    # -- layout ------------------------------------------------------------
    def place_globals(self, globals_: list[GlobalVariable]) -> None:
        """Assign addresses to globals and write initializers."""
        if self._finalized:
            raise MemoryError_("globals already placed")
        addr = self._globals_end
        for gv in globals_:
            # 8-byte align every global.
            addr = (addr + 7) & ~7
            gv.address = addr
            if gv.initializer is not None:
                self._write_initializer(gv, addr)
            addr += gv.size_bytes
        self._globals_end = addr
        self._stack_base = (addr + 15) & ~15
        self._stack_ptr = self._stack_base
        self._heap_base = self._stack_base + self._stack_size
        self._heap_ptr = self._heap_base
        if self._heap_base >= self.size:
            raise MemoryError_("memory too small for globals + stack")
        self._finalized = True

    def _write_initializer(self, gv: GlobalVariable, addr: int) -> None:
        elem = gv.elem_type
        for i, value in enumerate(gv.initializer or []):
            self.store(addr + i * elem.size_bytes, elem, value)

    # -- allocation --------------------------------------------------------
    def push_frame(self) -> int:
        """Mark the current stack position; returns a token for pop_frame."""
        return self._stack_ptr

    def pop_frame(self, token: int) -> None:
        self._stack_ptr = token

    def alloca(self, size_bytes: int) -> int:
        addr = (self._stack_ptr + 7) & ~7
        new_ptr = addr + size_bytes
        if new_ptr > self._stack_base + self._stack_size:
            raise MemoryError_("VM stack overflow")
        self._stack_ptr = new_ptr
        return addr

    def malloc(self, size_bytes: int) -> int:
        if size_bytes < 0:
            raise MemoryError_("negative malloc")
        addr = (self._heap_ptr + 7) & ~7
        new_ptr = addr + size_bytes
        if new_ptr > self.size:
            raise MemoryError_(
                f"VM heap exhausted (requested {size_bytes} bytes)"
            )
        self._heap_ptr = new_ptr
        return addr

    # -- access ------------------------------------------------------------
    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 8 or addr + nbytes > self.size:
            raise MemoryError_(f"access at {addr} ({nbytes} bytes) out of range")
        # Natural alignment, as the PPC405 bus would require for scalars.
        # Globals and allocas are 8-aligned and GEP scales by element size,
        # so well-formed programs never trip this.
        if nbytes > 1 and addr % nbytes:
            raise MemoryError_(
                f"misaligned {nbytes}-byte access at {addr}"
            )

    def load(self, addr: int, ty: Type):
        fmt = _STRUCT_FMT[(ty.kind, ty.bits)]
        nbytes = struct.calcsize(fmt)
        self._check(addr, nbytes)
        (value,) = struct.unpack_from("<" + fmt, self.data, addr)
        if ty.is_int:
            return wrap_int(value, ty)
        if ty.is_float:
            return float(value)
        return int(value)

    def store(self, addr: int, ty: Type, value) -> None:
        fmt = _STRUCT_FMT[(ty.kind, ty.bits)]
        nbytes = struct.calcsize(fmt)
        self._check(addr, nbytes)
        if ty.is_int:
            value = wrap_int(int(value), ty)
        elif ty.is_float:
            value = float(value)
            if ty.bits == 32:
                # round-trip through f32 to keep stored precision honest
                value = struct.unpack("f", struct.pack("f", value))[0]
        else:
            value = int(value)
        struct.pack_into("<" + fmt, self.data, addr, value)

    # -- bulk helpers (used by dataset loaders) -----------------------------
    def write_array(self, addr: int, ty: Type, values) -> None:
        for i, v in enumerate(values):
            self.store(addr + i * ty.size_bytes, ty, v)

    def read_array(self, addr: int, ty: Type, count: int) -> list:
        return [self.load(addr + i * ty.size_bytes, ty) for i in range(count)]
