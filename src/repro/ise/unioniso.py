"""Union-of-MISOs identification (greedy clustering baseline).

Middle ground between MAXMISO (linear, single-output) and single-cut
enumeration (exponential, multi-output): start from the MAXMISO partition
and greedily merge adjacent MAXMISOs (those connected by a def-use edge or
sharing an input) into multi-output candidates while the I/O constraints
hold and the merged subgraph stays convex.

A comparison algorithm alongside the MAXMISO identification the paper
uses in its candidate-search phase (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction
from repro.ise.candidate import Candidate
from repro.ise.maxmiso import MaxMisoIdentifier


@dataclass(frozen=True)
class UnionMisoIdentifier:
    """Merge MAXMISOs under I/O constraints."""

    max_inputs: int = 6
    max_outputs: int = 3
    min_size: int = 2

    name = "unioniso"

    def identify_block(
        self, function_name: str, block: BasicBlock, start_index: int = 0
    ) -> list[Candidate]:
        base = MaxMisoIdentifier(min_size=1).identify_block(
            function_name, block, 0
        )
        if not base:
            return []
        dfg = base[0].dfg
        groups: list[set[Instruction]] = [set(c.nodes) for c in base]

        def io_ok(nodes: set[Instruction]) -> bool:
            return (
                len(dfg.inputs_of(nodes)) <= self.max_inputs
                and len(dfg.outputs_of(nodes)) <= self.max_outputs
            )

        def adjacent(a: set[Instruction], b: set[Instruction]) -> bool:
            a_ids = {id(n) for n in a}
            b_inputs = {id(v) for v in dfg.inputs_of(b)}
            a_inputs = {id(v) for v in dfg.inputs_of(a)}
            if a_inputs & b_inputs:
                return True
            for n in a:
                for succ in dfg.graph.successors(n):
                    if succ in b:
                        return True
            for n in b:
                for succ in dfg.graph.successors(n):
                    if id(succ) in a_ids:
                        return True
            return False

        merged = True
        while merged:
            merged = False
            for i in range(len(groups)):
                for j in range(i + 1, len(groups)):
                    union = groups[i] | groups[j]
                    if (
                        adjacent(groups[i], groups[j])
                        and io_ok(union)
                        and dfg.is_convex(union)
                    ):
                        groups[i] = union
                        del groups[j]
                        merged = True
                        break
                if merged:
                    break

        order = {id(n): i for i, n in enumerate(dfg.nodes)}
        candidates: list[Candidate] = []
        index = start_index
        for group in groups:
            if len(group) < self.min_size:
                continue
            members = sorted(group, key=lambda n: order[id(n)])
            candidates.append(
                Candidate(
                    function=function_name,
                    block=block.name,
                    nodes=members,
                    dfg=dfg,
                    index=index,
                )
            )
            index += 1
        return candidates
