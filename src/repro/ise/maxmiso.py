"""MAXMISO identification (linear complexity).

The algorithm the paper uses for candidate search. A MISO (multiple-input,
single-output) subgraph computes one result; a MAXMISO is a MISO not
contained in any larger MISO. MAXMISOs partition the feasible nodes of a
dataflow graph and can be found in linear time (Alippi et al.):

1. a feasible node is a *root* if its result escapes the feasible region —
   it is used by more than one consumer, by an infeasible instruction, by
   another block, or not at all;
2. the MAXMISO of a root is grown backwards from the root through feasible
   operands whose *only* consumer lies inside the subgraph (fan-out-1
   chains); a node with fan-out > 1 stops the growth and seeds its own
   MAXMISO.

The resulting subgraphs are trees rooted at the single output, hence
trivially convex and single-output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.basicblock import BasicBlock
from repro.ir.dfg import DataFlowGraph
from repro.ir.instructions import Instruction
from repro.ise.candidate import Candidate
from repro.ise.feasibility import is_feasible_instruction


@dataclass(frozen=True)
class MaxMisoIdentifier:
    """Identify MAXMISO candidates in basic blocks.

    ``min_size`` drops trivial one-instruction candidates: offloading a
    single ALU operation can never amortize the FCB transfer overhead, and
    the paper's candidates average ~7 instructions.
    """

    min_size: int = 2

    name = "maxmiso"

    def identify_block(
        self, function_name: str, block: BasicBlock, start_index: int = 0
    ) -> list[Candidate]:
        dfg = DataFlowGraph(block)
        body = dfg.nodes
        feasible = {id(n) for n in body if is_feasible_instruction(n)}
        if not feasible:
            return []

        # consumers within the DFG body
        consumers: dict[int, list[Instruction]] = {id(n): [] for n in body}
        for node in body:
            for succ in dfg.graph.successors(node):
                consumers[id(node)].append(succ)

        # A node is a root iff its value is NOT consumed by exactly one
        # feasible in-block instruction (and nothing else).
        roots: list[Instruction] = []
        used_once_inside: set[int] = set()
        for node in body:
            if id(node) not in feasible:
                continue
            uses = consumers[id(node)]
            external_use = bool(
                dfg._external_uses.get(id(node), False)  # noqa: SLF001
            )
            feasible_uses = [u for u in uses if id(u) in feasible]
            infeasible_uses = [u for u in uses if id(u) not in feasible]
            if (
                len(feasible_uses) == 1
                and not infeasible_uses
                and not external_use
            ):
                used_once_inside.add(id(node))
            else:
                roots.append(node)

        candidates: list[Candidate] = []
        claimed: set[int] = set()
        index = start_index
        order = {id(n): i for i, n in enumerate(body)}
        for root in roots:
            members: list[Instruction] = []
            stack = [root]
            while stack:
                node = stack.pop()
                if id(node) in claimed:
                    continue
                claimed.add(id(node))
                members.append(node)
                for operand in node.operands:
                    if (
                        isinstance(operand, Instruction)
                        and id(operand) in feasible
                        and id(operand) in used_once_inside
                        and id(operand) not in claimed
                    ):
                        stack.append(operand)
            if len(members) < self.min_size:
                continue
            members.sort(key=lambda n: order[id(n)])
            candidates.append(
                Candidate(
                    function=function_name,
                    block=block.name,
                    nodes=members,
                    dfg=dfg,
                    index=index,
                )
            )
            index += 1
        return candidates
