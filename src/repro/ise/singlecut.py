"""Single-cut enumeration (exponential baseline).

A simplified Atasu/Pozzi-style exact algorithm: enumerate convex,
hardware-feasible subgraphs subject to I/O port constraints (Woolcano's FCB
gives 2 register read ports and 1 write port per instruction issue; we allow
configurable limits since the datapath can sequence transfers), and keep the
best non-overlapping set by estimated merit.

This is the "algorithmically expensive" state of the art the paper refers
to (obstacle 2 in the introduction): worst-case exponential in block size.
It serves as the no-pruning comparison point for the pruning-efficiency
metric of Table II and as ablation A2. A node-count budget aborts hopeless
blocks deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.basicblock import BasicBlock
from repro.ir.dfg import DataFlowGraph
from repro.ir.instructions import Instruction
from repro.ise.candidate import Candidate
from repro.ise.feasibility import is_feasible_instruction


@dataclass(frozen=True)
class SingleCutIdentifier:
    """Enumerate convex subgraphs under I/O constraints; greedy cover.

    Attributes:
        max_inputs / max_outputs: I/O port constraints of the target.
        min_size: smallest candidate worth implementing.
        search_budget: maximum number of subgraphs expanded per block
            (deterministic abort for exponential blow-up).
    """

    max_inputs: int = 4
    max_outputs: int = 2
    min_size: int = 2
    search_budget: int = 50_000

    name = "singlecut"

    def identify_block(
        self, function_name: str, block: BasicBlock, start_index: int = 0
    ) -> list[Candidate]:
        dfg = DataFlowGraph(block)
        body = dfg.topological_order()
        feasible = [n for n in body if is_feasible_instruction(n)]
        if not feasible:
            return []
        feasible_ids = {id(n) for n in feasible}

        # Enumerate connected convex subgraphs by growing from each seed in
        # topological order; prune on I/O violations that cannot recover.
        seen: set[frozenset[int]] = set()
        accepted: list[tuple[float, set[Instruction]]] = []
        expansions = 0

        def merit(nodes: set[Instruction]) -> float:
            # Software cycles saved is approximated by node count here;
            # the PivPav estimator refines this during selection.
            return float(len(nodes))

        def io_ok(nodes: set[Instruction]) -> bool:
            return (
                len(dfg.inputs_of(nodes)) <= self.max_inputs
                and len(dfg.outputs_of(nodes)) <= self.max_outputs
            )

        def neighbours(nodes: set[Instruction]) -> list[Instruction]:
            out: dict[int, Instruction] = {}
            for n in nodes:
                for op in n.operands:
                    if (
                        isinstance(op, Instruction)
                        and id(op) in feasible_ids
                        and op not in nodes
                    ):
                        out[id(op)] = op
                for succ in dfg.graph.successors(n):
                    if id(succ) in feasible_ids and succ not in nodes:
                        out[id(succ)] = succ
            return list(out.values())

        for seed in feasible:
            stack: list[set[Instruction]] = [{seed}]
            while stack and expansions < self.search_budget:
                nodes = stack.pop()
                key = frozenset(id(n) for n in nodes)
                if key in seen:
                    continue
                seen.add(key)
                expansions += 1
                if not dfg.is_convex(nodes):
                    continue
                if io_ok(nodes) and len(nodes) >= self.min_size:
                    accepted.append((merit(nodes), set(nodes)))
                # Grow: inputs can only increase so prune when already over
                # twice the budgeted ports (outputs may shrink when a
                # consumer joins, so allow slack).
                if len(dfg.inputs_of(nodes)) > 2 * self.max_inputs:
                    continue
                for nb in neighbours(nodes):
                    grown = set(nodes)
                    grown.add(nb)
                    gkey = frozenset(id(n) for n in grown)
                    if gkey not in seen:
                        stack.append(grown)
            if expansions >= self.search_budget:
                break

        # Greedy maximum-merit non-overlapping cover.
        accepted.sort(key=lambda t: (-t[0], sorted(id(n) for n in t[1])[0]))
        order = {id(n): i for i, n in enumerate(body)}
        claimed: set[int] = set()
        candidates: list[Candidate] = []
        index = start_index
        for _, nodes in accepted:
            if any(id(n) in claimed for n in nodes):
                continue
            claimed.update(id(n) for n in nodes)
            members = sorted(nodes, key=lambda n: order[id(n)])
            candidates.append(
                Candidate(
                    function=function_name,
                    block=block.name,
                    nodes=members,
                    dfg=dfg,
                    index=index,
                )
            )
            index += 1
        return candidates
