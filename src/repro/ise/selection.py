"""Candidate search: pruning -> identification -> estimation -> selection.

Implements the complete first phase of the ASIP specialization process
(Figure 2, "Candidate Search"). Wall-clock time of this phase is measured
for real (the ``real [ms]`` column of Table II): unlike the FPGA CAD stages,
candidate search genuinely runs here, and its millisecond-scale runtime is
one of the paper's findings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.ir.module import Module
from repro.ise.candidate import Candidate
from repro.ise.maxmiso import MaxMisoIdentifier
from repro.ise.pruning import PruningFilter
from repro.obs import get_log, get_tracer
from repro.pivpav.estimator import CandidateEstimate, PivPavEstimator
from repro.vm.costmodel import CostModel, PPC405_COST_MODEL
from repro.vm.profiler import BlockKey, ExecutionProfile


@dataclass
class CandidateSearchResult:
    """Everything the Candidate Search phase produced for one application."""

    selected: list[CandidateEstimate]
    rejected: list[CandidateEstimate]
    pruned_blocks: list[BlockKey]
    pruned_block_instructions: int
    search_seconds: float  # measured wall clock of the whole phase

    @property
    def candidate_count(self) -> int:
        return len(self.selected)

    @property
    def identified_count(self) -> int:
        return len(self.selected) + len(self.rejected)

    @property
    def avg_candidate_size(self) -> float:
        if not self.selected:
            return 0.0
        return sum(e.candidate.size for e in self.selected) / len(self.selected)

    def candidates(self) -> list[Candidate]:
        return [e.candidate for e in self.selected]


@dataclass
class CandidateSearch:
    """Configured candidate-search pipeline.

    Attributes:
        pruning: block filter applied before identification (@50pS3L by
            default; use :data:`repro.ise.pruning.NO_PRUNING` to disable).
        identifier: any object with ``identify_block(func_name, block,
            start_index)`` (MAXMISO by default, as in the paper).
        min_total_cycles_saved: selection threshold — a candidate must save
            at least this many cycles over the profiled run to be kept.
    """

    pruning: PruningFilter = field(default_factory=PruningFilter)
    identifier: object = field(default_factory=MaxMisoIdentifier)
    estimator: PivPavEstimator | None = None
    cost_model: CostModel = PPC405_COST_MODEL
    min_total_cycles_saved: float = 1000.0
    # When estimation finds no profitable candidate at all, the paper's
    # flow still implements the best-ranked candidates (its static
    # estimator was optimistic); we keep up to this many as a fallback so
    # integer-bound applications show the paper's characteristic pattern:
    # real hardware-generation overhead with a ratio of 1.00.
    fallback_count: int = 5

    def __post_init__(self) -> None:
        if self.estimator is None:
            self.estimator = PivPavEstimator(cost_model=self.cost_model)

    def run(self, module: Module, profile: ExecutionProfile) -> CandidateSearchResult:
        tracer = get_tracer()
        with tracer.span("search", module=module.name) as sp_search:
            return self._run_traced(tracer, sp_search, module, profile)

    def _run_traced(
        self, tracer, sp_search, module: Module, profile: ExecutionProfile
    ) -> CandidateSearchResult:
        start = time.perf_counter()

        # 1. Pruning: restrict identification to the hottest largest blocks.
        with tracer.span("search.pruning") as sp:
            block_keys = self.pruning.select_blocks(module, profile)
            blocks_by_key = {}
            for func in module.defined_functions():
                for block in func.blocks:
                    blocks_by_key[(func.name, block.name)] = block
            pruned_instructions = sum(
                len(blocks_by_key[k].instructions)
                for k in block_keys
                if k in blocks_by_key
            )
            sp.set_attrs(
                blocks=len(block_keys), instructions=pruned_instructions
            )

        # 2. Identification.
        with tracer.span("search.identification") as sp:
            candidates: list[Candidate] = []
            for key in block_keys:
                block = blocks_by_key.get(key)
                if block is None:
                    continue
                candidates.extend(
                    self.identifier.identify_block(key[0], block, len(candidates))
                )
            sp.set_attr("candidates", len(candidates))

        # 3. Estimation + 4. Selection.
        with tracer.span("search.estimation") as sp:
            estimates = [self.estimator.estimate(cand) for cand in candidates]
            sp.set_attr("estimates", len(estimates))
        with tracer.span("search.selection") as sp:
            selected: list[CandidateEstimate] = []
            rejected: list[CandidateEstimate] = []
            for est in estimates:
                cand = est.candidate
                count = profile.count_of(cand.function, cand.block)
                total_saved = est.cycles_saved * count
                if est.profitable and total_saved >= self.min_total_cycles_saved:
                    selected.append(est)
                else:
                    rejected.append(est)
            if not selected and rejected and self.fallback_count > 0:
                rejected.sort(
                    key=lambda e: (-e.cycles_saved, e.candidate.key)
                )
                selected = rejected[: self.fallback_count]
                rejected = rejected[self.fallback_count :]

            # Deterministic order: biggest total savings first.
            selected.sort(
                key=lambda e: (
                    -e.cycles_saved * profile.count_of(e.candidate.function, e.candidate.block),
                    e.candidate.key,
                )
            )
            sp.set_attrs(selected=len(selected), rejected=len(rejected))
            log = get_log()
            if log.enabled:
                # One accept/reject record per candidate, after the
                # fallback promotion, so the log reflects final decisions.
                for decision, group in (("accept", selected), ("reject", rejected)):
                    for est in group:
                        log.emit(
                            "search.candidate",
                            level="debug",
                            decision=decision,
                            candidate=est.candidate.key,
                            size=est.candidate.size,
                            cycles_saved=round(est.cycles_saved, 6),
                        )

        elapsed = time.perf_counter() - start
        sp_search.set_attrs(selected=len(selected), virtual_seconds=elapsed)
        return CandidateSearchResult(
            selected=selected,
            rejected=rejected,
            pruned_blocks=block_keys,
            pruned_block_instructions=pruned_instructions,
            search_seconds=elapsed,
        )
