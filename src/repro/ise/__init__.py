"""Instruction-set-extension algorithms (the Candidate Search phase).

Implements the first phase of the paper's ASIP specialization process
(Figure 2): pruning the search space to the most promising basic blocks
(:mod:`repro.ise.pruning`, the @50pS3L filter family of [9]), identifying
custom-instruction candidates in their dataflow graphs
(:mod:`repro.ise.maxmiso` — the linear-complexity MAXMISO algorithm the
paper uses — plus two comparison algorithms), and selecting the best
candidates using PivPav performance estimates (:mod:`repro.ise.selection`).
"""

from repro.ise.candidate import Candidate
from repro.ise.feasibility import FeasibilityAnalysis, is_feasible_instruction
from repro.ise.maxmiso import MaxMisoIdentifier
from repro.ise.singlecut import SingleCutIdentifier
from repro.ise.unioniso import UnionMisoIdentifier
from repro.ise.pruning import PruningFilter, parse_filter_spec
from repro.ise.selection import CandidateSearch, CandidateSearchResult

__all__ = [
    "Candidate",
    "FeasibilityAnalysis",
    "is_feasible_instruction",
    "MaxMisoIdentifier",
    "SingleCutIdentifier",
    "UnionMisoIdentifier",
    "PruningFilter",
    "parse_filter_spec",
    "CandidateSearch",
    "CandidateSearchResult",
]
