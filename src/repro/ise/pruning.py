"""Search-space pruning filters (the @50pS3L family of [9]).

The paper prunes the set of basic blocks handed to the identification
algorithms, reporting that this cuts identification time by two orders of
magnitude at the cost of ~1/4 of the speedup. It uses the ``@50pS3L``
filter; reference [9] (which defines the notation precisely) is not
available, so we implement the following documented interpretation:

``@{P}pS{N}L``:
  1. rank all executed basic blocks by their share of dynamic execution
     time (hottest first);
  2. keep the hottest blocks until their cumulative share reaches ``P`` %
     ("50p" = half of the execution time);
  3. of those, keep the ``N`` **largest** by static instruction count
     ("S3L" = select the 3 largest), since larger blocks can host larger
     candidates.

This yields 1-3 selected blocks per application, matching the ``blk``
column of the paper's Table II.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.ir.module import Module
from repro.vm.costmodel import CostModel, PPC405_COST_MODEL
from repro.vm.profiler import BlockKey, ExecutionProfile

_SPEC_RE = re.compile(r"^@(\d+)pS(\d+)L$")


@dataclass(frozen=True)
class PruningFilter:
    """A @{P}pS{N}L block-pruning filter."""

    time_share_pct: float = 50.0
    max_blocks: int = 3
    cost_model: CostModel = PPC405_COST_MODEL

    @property
    def spec(self) -> str:
        return f"@{int(self.time_share_pct)}pS{self.max_blocks}L"

    def select_blocks(
        self, module: Module, profile: ExecutionProfile
    ) -> list[BlockKey]:
        """Blocks that survive pruning, ordered hottest-first."""
        shares = profile.block_time_shares(module, self.cost_model)
        hot = sorted(shares.items(), key=lambda kv: (-kv[1], kv[0]))

        # Hottest-first prefix until the cumulative time share reaches P%,
        # extended to at least N blocks (when that many executed blocks
        # exist) so very kernel-concentrated applications still offer the
        # identification stage its full block budget.
        cumulative = 0.0
        prefix: list[BlockKey] = []
        for key, share in hot:
            if share <= 0.0:
                break
            if (
                cumulative * 100.0 >= self.time_share_pct
                and len(prefix) >= self.max_blocks
            ):
                break
            prefix.append(key)
            cumulative += share

        sizes: dict[BlockKey, int] = {}
        for func in module.defined_functions():
            for block in func.blocks:
                sizes[(func.name, block.name)] = len(block.instructions)

        largest = sorted(prefix, key=lambda k: (-sizes.get(k, 0), k))
        selected = set(largest[: self.max_blocks])
        return [k for k in prefix if k in selected]


def parse_filter_spec(spec: str) -> PruningFilter:
    """Parse ``@50pS3L``-style filter specifications."""
    match = _SPEC_RE.match(spec)
    if not match:
        raise ValueError(f"malformed pruning filter spec: {spec!r}")
    share = float(match.group(1))
    count = int(match.group(2))
    if not 0 < share <= 100:
        raise ValueError(f"time share must be in (0, 100]: {spec!r}")
    if count < 1:
        raise ValueError(f"block count must be >= 1: {spec!r}")
    return PruningFilter(time_share_pct=share, max_blocks=count)


NO_PRUNING = PruningFilter(time_share_pct=100.0, max_blocks=10**9)
