"""Hardware feasibility of instructions inside custom-instruction candidates.

A Woolcano custom instruction is a feed-forward datapath between the
PowerPC's register-file read ports and write-back port. Anything that
touches memory, control flow, or another function cannot be part of it:
loads, stores, allocas, calls, branches, phis. This restriction is the
paper's central structural limitation (Section V.D): basic blocks passed to
identification contain "a sizable number of the hardware-infeasible
instructions, such as accesses to global variables or memory", which keeps
candidates small (~7 instructions) even in 150+-instruction blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode, is_hw_feasible


def is_feasible_instruction(instr: Instruction) -> bool:
    """Whether *instr* may appear inside a custom-instruction candidate."""
    if not is_hw_feasible(instr.opcode):
        return False
    # Divisions are implementable but only as deeply pipelined cores; the
    # datapath generator supports them, so they stay feasible. What is NOT
    # feasible is anything whose result depends on VM state.
    return True


@dataclass
class FeasibilityAnalysis:
    """Feasibility partition of one basic block's instructions."""

    block: BasicBlock
    feasible: list[Instruction] = field(default_factory=list)
    infeasible: list[Instruction] = field(default_factory=list)

    @classmethod
    def of_block(cls, block: BasicBlock) -> "FeasibilityAnalysis":
        analysis = cls(block)
        for instr in block.instructions:
            if instr.is_terminator or instr.opcode is Opcode.PHI:
                analysis.infeasible.append(instr)
            elif is_feasible_instruction(instr):
                analysis.feasible.append(instr)
            else:
                analysis.infeasible.append(instr)
        return analysis

    @property
    def feasible_fraction(self) -> float:
        total = len(self.block.instructions)
        return len(self.feasible) / total if total else 0.0
