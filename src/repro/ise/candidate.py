"""Custom-instruction candidates.

A candidate is a convex, hardware-feasible subgraph of one basic block's
dataflow graph, with identified external inputs and outputs. Candidates are
hashable by a *structural signature* (canonical form of the DFG shape,
opcodes and types) — the key used by the partial-bitstream cache in
Section VI-A: structurally identical candidates map to the same hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.ir.dfg import DataFlowGraph
from repro.ir.instructions import Instruction
from repro.ir.values import Constant, Value
from repro.util.rng import stable_hash


@dataclass
class Candidate:
    """One custom-instruction candidate."""

    function: str
    block: str
    nodes: list[Instruction]  # in topological order
    dfg: DataFlowGraph = field(repr=False)
    index: int = 0  # per-app candidate number

    def __post_init__(self) -> None:
        self._node_ids = {id(n) for n in self.nodes}

    # -- structure ---------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of IR instructions covered (paper: ~7 per candidate)."""
        return len(self.nodes)

    @cached_property
    def inputs(self) -> list[Value]:
        return self.dfg.inputs_of(set(self.nodes))

    @cached_property
    def outputs(self) -> list[Instruction]:
        return self.dfg.outputs_of(set(self.nodes))

    def contains(self, instr: Instruction) -> bool:
        return id(instr) in self._node_ids

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.function, self.block, self.index)

    # -- canonical signature -------------------------------------------------
    @cached_property
    def signature(self) -> int:
        """Structural 64-bit signature of the candidate datapath.

        Two candidates with the same signature describe the same hardware:
        identical node opcodes/types/predicates, identical internal wiring,
        and identical input arity/types. Instruction names, parent blocks
        and concrete non-constant input values do not influence it.
        Constants participate (they are baked into the datapath).
        """
        order = {id(n): i for i, n in enumerate(self.nodes)}
        input_index: dict[int, int] = {}
        parts: list[object] = []
        for instr in self.nodes:
            operand_keys = []
            for op in instr.operands:
                if isinstance(op, Constant):
                    operand_keys.append(("c", str(op.type), repr(op.value)))
                elif isinstance(op, Instruction) and id(op) in order:
                    operand_keys.append(("n", order[id(op)]))
                else:
                    idx = input_index.setdefault(id(op), len(input_index))
                    operand_keys.append(("i", idx, str(op.type)))
            parts.append(
                (
                    instr.opcode.value,
                    str(instr.type),
                    instr.pred.value if instr.pred is not None else "",
                    instr.elem_size,
                    tuple(operand_keys),
                )
            )
        # Output positions are part of the interface.
        out_positions = tuple(sorted(order[id(o)] for o in self.outputs))
        return stable_hash(tuple(parts), out_positions)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Candidate #{self.index} {self.function}/{self.block} "
            f"size={self.size} in={len(self.inputs)} out={len(self.outputs)}>"
        )
