"""Control-flow analyses: orderings, dominators, natural loops.

Used by the verifier (SSA dominance checking), LICM (loop detection) and
the simplify-CFG pass (reachability).

The dominator computation is the Cooper–Harvey–Kennedy iterative algorithm
over a reverse-postorder numbering, which is near-linear in practice.

These analyses keep the bitcode — the paper's Figure 1 intermediate
form — well-formed ahead of profiling and candidate search.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function


def reverse_postorder(func: Function) -> list[BasicBlock]:
    """Blocks in reverse postorder from the entry (unreachable blocks omitted)."""
    visited: set[int] = set()
    order: list[BasicBlock] = []

    # Iterative DFS to avoid recursion limits on long CFG chains.
    stack: list[tuple[BasicBlock, int]] = [(func.entry, 0)]
    visited.add(id(func.entry))
    while stack:
        block, idx = stack[-1]
        succs = block.successors
        if idx < len(succs):
            stack[-1] = (block, idx + 1)
            succ = succs[idx]
            if id(succ) not in visited:
                visited.add(id(succ))
                stack.append((succ, 0))
        else:
            order.append(block)
            stack.pop()
    order.reverse()
    return order


@dataclass
class NaturalLoop:
    """A natural loop: header plus the set of blocks in its body."""

    header: BasicBlock
    blocks: set[int] = field(default_factory=set)  # ids of member blocks
    members: list[BasicBlock] = field(default_factory=list)

    def contains(self, block: BasicBlock) -> bool:
        return id(block) in self.blocks


class ControlFlowInfo:
    """Per-function CFG analysis bundle (orders, dominators, loops)."""

    def __init__(self, func: Function) -> None:
        self.function = func
        self.rpo = reverse_postorder(func)
        self._rpo_index = {id(b): i for i, b in enumerate(self.rpo)}
        self._preds: dict[int, list[BasicBlock]] = {id(b): [] for b in self.rpo}
        for block in self.rpo:
            for succ in block.successors:
                if id(succ) in self._preds:
                    self._preds[id(succ)].append(block)
        self._idom = self._compute_dominators()
        self.loops = self._find_loops()

    # -- reachability / preds ------------------------------------------------
    def is_reachable(self, block: BasicBlock) -> bool:
        return id(block) in self._rpo_index

    def predecessors(self, block: BasicBlock) -> list[BasicBlock]:
        return list(self._preds.get(id(block), []))

    # -- dominators ------------------------------------------------------------
    def _compute_dominators(self) -> dict[int, BasicBlock | None]:
        entry = self.function.entry
        idom: dict[int, BasicBlock | None] = {id(entry): entry}

        def intersect(b1: BasicBlock, b2: BasicBlock) -> BasicBlock:
            f1, f2 = b1, b2
            while f1 is not f2:
                while self._rpo_index[id(f1)] > self._rpo_index[id(f2)]:
                    f1 = idom[id(f1)]  # type: ignore[assignment]
                while self._rpo_index[id(f2)] > self._rpo_index[id(f1)]:
                    f2 = idom[id(f2)]  # type: ignore[assignment]
            return f1

        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block is entry:
                    continue
                preds = [p for p in self._preds[id(block)] if id(p) in idom]
                if not preds:
                    continue
                new_idom = preds[0]
                for p in preds[1:]:
                    new_idom = intersect(p, new_idom)
                if idom.get(id(block)) is not new_idom:
                    idom[id(block)] = new_idom
                    changed = True
        idom[id(entry)] = None
        return idom

    def immediate_dominator(self, block: BasicBlock) -> BasicBlock | None:
        return self._idom.get(id(block))

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if *a* dominates *b* (reflexive)."""
        node: BasicBlock | None = b
        while node is not None:
            if node is a:
                return True
            node = self._idom.get(id(node))
        return False

    # -- loops -------------------------------------------------------------
    def _find_loops(self) -> list[NaturalLoop]:
        loops: dict[int, NaturalLoop] = {}
        for block in self.rpo:
            for succ in block.successors:
                if self.is_reachable(succ) and self.dominates(succ, block):
                    # back edge block -> succ; succ is a loop header
                    loop = loops.setdefault(id(succ), NaturalLoop(header=succ))
                    self._collect_loop_body(loop, block)
        for loop in loops.values():
            if id(loop.header) not in loop.blocks:
                loop.blocks.add(id(loop.header))
                loop.members.append(loop.header)
        return list(loops.values())

    def _collect_loop_body(self, loop: NaturalLoop, latch: BasicBlock) -> None:
        worklist = [latch]
        if id(loop.header) not in loop.blocks:
            loop.blocks.add(id(loop.header))
            loop.members.append(loop.header)
        while worklist:
            blk = worklist.pop()
            if id(blk) in loop.blocks:
                continue
            loop.blocks.add(id(blk))
            loop.members.append(blk)
            worklist.extend(self._preds.get(id(blk), []))

    def loop_of(self, block: BasicBlock) -> NaturalLoop | None:
        """The innermost (smallest) loop containing *block*, if any."""
        best: NaturalLoop | None = None
        for loop in self.loops:
            if loop.contains(block):
                if best is None or len(loop.members) < len(best.members):
                    best = loop
        return best

    def loop_depth(self, block: BasicBlock) -> int:
        return sum(1 for loop in self.loops if loop.contains(block))
