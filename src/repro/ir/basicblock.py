"""Basic blocks: straight-line instruction sequences with one terminator.

Basic blocks are the unit of profiling in the paper: per-block
execution counts drive the coverage analysis of Section IV-C and the
pruning that precedes candidate search (Figure 2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.ir.instructions import Instruction, PhiInstruction
from repro.ir.opcodes import Opcode

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.function import Function


class BasicBlock:
    """A basic block within a function.

    Instructions are stored in execution order; phi nodes must come first
    and exactly one terminator must come last (enforced by the verifier).
    """

    __slots__ = ("name", "instructions", "parent")

    def __init__(self, name: str, parent: "Function | None" = None) -> None:
        self.name = name
        self.instructions: list[Instruction] = []
        self.parent = parent

    # -- mutation --------------------------------------------------------------
    def append(self, instr: Instruction) -> Instruction:
        if self.instructions and self.instructions[-1].is_terminator:
            raise ValueError(
                f"cannot append {instr.opcode} after terminator in block {self.name}"
            )
        instr.parent = self
        self.instructions.append(instr)
        return instr

    def insert(self, index: int, instr: Instruction) -> Instruction:
        instr.parent = self
        self.instructions.insert(index, instr)
        return instr

    def remove(self, instr: Instruction) -> None:
        self.instructions.remove(instr)
        instr.parent = None

    # -- queries ---------------------------------------------------------------
    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        return list(term.targets) if term is not None else []

    def predecessors(self) -> list["BasicBlock"]:
        """Blocks that branch to this one (computed by scanning the parent)."""
        if self.parent is None:
            return []
        return [b for b in self.parent.blocks if self in b.successors]

    def phis(self) -> list[PhiInstruction]:
        out = []
        for instr in self.instructions:
            if isinstance(instr, PhiInstruction):
                out.append(instr)
            else:
                break
        return out

    def non_phi_instructions(self) -> list[Instruction]:
        return [i for i in self.instructions if i.opcode is not Opcode.PHI]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BasicBlock {self.name} ({len(self.instructions)} instrs)>"
