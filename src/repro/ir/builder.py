"""IRBuilder: the construction API used by the frontend and by tests.

Mirrors LLVM's ``IRBuilder``: holds an insertion point (a basic block) and
offers one method per opcode, with eager type checking so malformed IR is
rejected at build time rather than at verification time.

The IR built here is the reproduction's stand-in for LLVM bitcode in
the paper's Figure 1 tool flow.
"""

from __future__ import annotations

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, PhiInstruction
from repro.ir.opcodes import (
    FCmpPred,
    FLOAT_BINARY_OPS,
    ICmpPred,
    INT_BINARY_OPS,
    Opcode,
)
from repro.ir.types import F32, F64, I1, PTR, Type, VOID
from repro.ir.values import Constant, Value


class IRBuilder:
    """Builds instructions into a current basic block."""

    def __init__(self, block: BasicBlock | None = None) -> None:
        self.block = block

    # -- positioning ---------------------------------------------------------
    def set_block(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise ValueError("builder has no insertion point")
        return self.block.parent

    def _insert(self, instr: Instruction, name_hint: str) -> Instruction:
        if self.block is None:
            raise ValueError("builder has no insertion point")
        if instr.has_result and not instr.name:
            instr.name = self.function.fresh_name(name_hint)
        return self.block.append(instr)

    # -- constants -------------------------------------------------------------
    @staticmethod
    def const(ty: Type, value) -> Constant:
        return Constant(ty, value)

    @staticmethod
    def i32(value: int) -> Constant:
        from repro.ir.types import I32

        return Constant(I32, value)

    @staticmethod
    def i64(value: int) -> Constant:
        from repro.ir.types import I64

        return Constant(I64, value)

    @staticmethod
    def f64(value: float) -> Constant:
        return Constant(F64, value)

    @staticmethod
    def true() -> Constant:
        return Constant(I1, 1)

    @staticmethod
    def false() -> Constant:
        return Constant(I1, 0)

    # -- arithmetic ------------------------------------------------------------
    def binop(self, op: Opcode, lhs: Value, rhs: Value, name: str = "") -> Instruction:
        if lhs.type != rhs.type:
            raise TypeError(f"{op}: operand types differ ({lhs.type} vs {rhs.type})")
        if op in INT_BINARY_OPS and not lhs.type.is_int:
            raise TypeError(f"{op}: requires integer operands, got {lhs.type}")
        if op in FLOAT_BINARY_OPS and not lhs.type.is_float:
            raise TypeError(f"{op}: requires float operands, got {lhs.type}")
        instr = Instruction(op, lhs.type, [lhs, rhs], name)
        return self._insert(instr, op.value)

    def add(self, a, b, name=""):
        return self.binop(Opcode.ADD, a, b, name)

    def sub(self, a, b, name=""):
        return self.binop(Opcode.SUB, a, b, name)

    def mul(self, a, b, name=""):
        return self.binop(Opcode.MUL, a, b, name)

    def sdiv(self, a, b, name=""):
        return self.binop(Opcode.SDIV, a, b, name)

    def udiv(self, a, b, name=""):
        return self.binop(Opcode.UDIV, a, b, name)

    def srem(self, a, b, name=""):
        return self.binop(Opcode.SREM, a, b, name)

    def urem(self, a, b, name=""):
        return self.binop(Opcode.UREM, a, b, name)

    def and_(self, a, b, name=""):
        return self.binop(Opcode.AND, a, b, name)

    def or_(self, a, b, name=""):
        return self.binop(Opcode.OR, a, b, name)

    def xor(self, a, b, name=""):
        return self.binop(Opcode.XOR, a, b, name)

    def shl(self, a, b, name=""):
        return self.binop(Opcode.SHL, a, b, name)

    def lshr(self, a, b, name=""):
        return self.binop(Opcode.LSHR, a, b, name)

    def ashr(self, a, b, name=""):
        return self.binop(Opcode.ASHR, a, b, name)

    def fadd(self, a, b, name=""):
        return self.binop(Opcode.FADD, a, b, name)

    def fsub(self, a, b, name=""):
        return self.binop(Opcode.FSUB, a, b, name)

    def fmul(self, a, b, name=""):
        return self.binop(Opcode.FMUL, a, b, name)

    def fdiv(self, a, b, name=""):
        return self.binop(Opcode.FDIV, a, b, name)

    def frem(self, a, b, name=""):
        return self.binop(Opcode.FREM, a, b, name)

    def fneg(self, a: Value, name: str = "") -> Instruction:
        if not a.type.is_float:
            raise TypeError(f"fneg: requires float operand, got {a.type}")
        return self._insert(Instruction(Opcode.FNEG, a.type, [a], name), "fneg")

    # -- comparisons -------------------------------------------------------
    def icmp(self, pred: ICmpPred, lhs: Value, rhs: Value, name: str = "") -> Instruction:
        if lhs.type != rhs.type:
            raise TypeError(f"icmp: operand types differ ({lhs.type} vs {rhs.type})")
        if not (lhs.type.is_int or lhs.type.is_ptr):
            raise TypeError(f"icmp: requires int/ptr operands, got {lhs.type}")
        instr = Instruction(Opcode.ICMP, I1, [lhs, rhs], name, pred=pred)
        return self._insert(instr, "cmp")

    def fcmp(self, pred: FCmpPred, lhs: Value, rhs: Value, name: str = "") -> Instruction:
        if lhs.type != rhs.type:
            raise TypeError(f"fcmp: operand types differ ({lhs.type} vs {rhs.type})")
        if not lhs.type.is_float:
            raise TypeError(f"fcmp: requires float operands, got {lhs.type}")
        instr = Instruction(Opcode.FCMP, I1, [lhs, rhs], name, pred=pred)
        return self._insert(instr, "fcmp")

    # -- casts -------------------------------------------------------------
    def cast(self, op: Opcode, value: Value, to_type: Type, name: str = "") -> Instruction:
        self._check_cast(op, value.type, to_type)
        return self._insert(Instruction(op, to_type, [value], name), op.value)

    @staticmethod
    def _check_cast(op: Opcode, src: Type, dst: Type) -> None:
        ok = {
            Opcode.ZEXT: src.is_int and dst.is_int and dst.bits > src.bits,
            Opcode.SEXT: src.is_int and dst.is_int and dst.bits > src.bits,
            Opcode.TRUNC: src.is_int and dst.is_int and dst.bits < src.bits,
            Opcode.FPTOSI: src.is_float and dst.is_int,
            Opcode.SITOFP: src.is_int and dst.is_float,
            Opcode.FPEXT: src == F32 and dst == F64,
            Opcode.FPTRUNC: src == F64 and dst == F32,
            Opcode.BITCAST: src.size_bytes == dst.size_bytes,
        }.get(op)
        if ok is None:
            raise TypeError(f"{op} is not a cast opcode")
        if not ok:
            raise TypeError(f"invalid cast {op}: {src} -> {dst}")

    def zext(self, v, ty, name=""):
        return self.cast(Opcode.ZEXT, v, ty, name)

    def sext(self, v, ty, name=""):
        return self.cast(Opcode.SEXT, v, ty, name)

    def trunc(self, v, ty, name=""):
        return self.cast(Opcode.TRUNC, v, ty, name)

    def fptosi(self, v, ty, name=""):
        return self.cast(Opcode.FPTOSI, v, ty, name)

    def sitofp(self, v, ty, name=""):
        return self.cast(Opcode.SITOFP, v, ty, name)

    def fpext(self, v, name=""):
        return self.cast(Opcode.FPEXT, v, F64, name)

    def fptrunc(self, v, name=""):
        return self.cast(Opcode.FPTRUNC, v, F32, name)

    # -- select / phi ------------------------------------------------------
    def select(self, cond: Value, if_true: Value, if_false: Value, name: str = ""):
        if cond.type != I1:
            raise TypeError(f"select: condition must be i1, got {cond.type}")
        if if_true.type != if_false.type:
            raise TypeError(
                f"select: arm types differ ({if_true.type} vs {if_false.type})"
            )
        instr = Instruction(
            Opcode.SELECT, if_true.type, [cond, if_true, if_false], name
        )
        return self._insert(instr, "sel")

    def phi(self, ty: Type, name: str = "") -> PhiInstruction:
        """Insert a phi at the start of the current block's phi group."""
        if self.block is None:
            raise ValueError("builder has no insertion point")
        instr = PhiInstruction(ty, name or self.function.fresh_name("phi"))
        index = len(self.block.phis())
        self.block.insert(index, instr)
        return instr

    # -- memory ------------------------------------------------------------
    def alloca(self, elem_type: Type, count: int = 1, name: str = "") -> Instruction:
        instr = Instruction(
            Opcode.ALLOCA,
            PTR,
            [],
            name,
            elem_size=elem_type.size_bytes,
            alloc_count=count,
        )
        return self._insert(instr, "ptr")

    def load(self, ty: Type, ptr: Value, name: str = "") -> Instruction:
        if not ptr.type.is_ptr:
            raise TypeError(f"load: pointer operand required, got {ptr.type}")
        return self._insert(Instruction(Opcode.LOAD, ty, [ptr], name), "ld")

    def store(self, value: Value, ptr: Value) -> Instruction:
        if not ptr.type.is_ptr:
            raise TypeError(f"store: pointer operand required, got {ptr.type}")
        return self._insert(Instruction(Opcode.STORE, VOID, [value, ptr]), "")

    def gep(self, ptr: Value, index: Value, elem_size: int, name: str = "") -> Instruction:
        """Pointer arithmetic: ``ptr + index * elem_size`` (bytes)."""
        if not ptr.type.is_ptr:
            raise TypeError(f"gep: pointer operand required, got {ptr.type}")
        if not index.type.is_int:
            raise TypeError(f"gep: integer index required, got {index.type}")
        if elem_size <= 0:
            raise ValueError("gep: elem_size must be positive")
        instr = Instruction(Opcode.GEP, PTR, [ptr, index], name, elem_size=elem_size)
        return self._insert(instr, "gep")

    # -- control flow ------------------------------------------------------
    def br(self, target: BasicBlock) -> Instruction:
        instr = Instruction(Opcode.BR, VOID, [], targets=[target])
        return self._insert(instr, "")

    def condbr(
        self, cond: Value, if_true: BasicBlock, if_false: BasicBlock
    ) -> Instruction:
        if cond.type != I1:
            raise TypeError(f"condbr: condition must be i1, got {cond.type}")
        instr = Instruction(Opcode.CONDBR, VOID, [cond], targets=[if_true, if_false])
        return self._insert(instr, "")

    def ret(self, value: Value | None = None) -> Instruction:
        operands = [value] if value is not None else []
        instr = Instruction(Opcode.RET, VOID, operands)
        return self._insert(instr, "")

    def call(self, callee, args: list[Value], name: str = "") -> Instruction:
        """Call a :class:`Function` or an intrinsic (callee given as str)."""
        if isinstance(callee, str):
            from repro.vm.intrinsics import intrinsic_signature

            ret_ty, param_tys = intrinsic_signature(callee)
            if len(args) != len(param_tys):
                raise TypeError(
                    f"call {callee}: expected {len(param_tys)} args, got {len(args)}"
                )
            for a, ty in zip(args, param_tys):
                if a.type != ty:
                    raise TypeError(
                        f"call {callee}: argument type {a.type}, expected {ty}"
                    )
        else:
            ret_ty = callee.return_type
            if len(args) != len(callee.args):
                raise TypeError(
                    f"call {callee.name}: expected {len(callee.args)} args, "
                    f"got {len(args)}"
                )
            for a, formal in zip(args, callee.args):
                if a.type != formal.type:
                    raise TypeError(
                        f"call {callee.name}: argument type {a.type}, "
                        f"expected {formal.type}"
                    )
        instr = Instruction(Opcode.CALL, ret_ty, list(args), name, callee=callee)
        return self._insert(instr, "call" if not ret_ty.is_void else "")
