"""SSA intermediate representation ("bitcode").

This package plays the role of LLVM bitcode in the paper's tool flow: the
MiniC frontend (:mod:`repro.frontend`) lowers source programs into this IR,
the virtual machine (:mod:`repro.vm`) interprets it with profiling, and the
ISE algorithms (:mod:`repro.ise`) search its per-block dataflow graphs for
custom-instruction candidates.

The IR is a conventional typed SSA form:

- a :class:`~repro.ir.module.Module` holds global variables and functions,
- a :class:`~repro.ir.function.Function` holds arguments and basic blocks,
- a :class:`~repro.ir.basicblock.BasicBlock` holds a straight-line list of
  :class:`~repro.ir.instructions.Instruction` objects ending in a terminator,
- instructions are themselves SSA values referenced as operands.

Construction normally goes through :class:`~repro.ir.builder.IRBuilder`.
"""

from repro.ir.types import (
    Type,
    VOID,
    I1,
    I8,
    I16,
    I32,
    I64,
    F32,
    F64,
    PTR,
)
from repro.ir.opcodes import Opcode, ICmpPred, FCmpPred
from repro.ir.values import Value, Constant, Argument, GlobalVariable, UndefValue
from repro.ir.instructions import Instruction, PhiInstruction
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.builder import IRBuilder
from repro.ir.verifier import VerificationError, verify_function, verify_module
from repro.ir.printer import print_module, print_function
from repro.ir.textparser import IrParseError, parse_module
from repro.ir.dfg import DataFlowGraph
from repro.ir.cfg import ControlFlowInfo

__all__ = [
    "Type",
    "VOID",
    "I1",
    "I8",
    "I16",
    "I32",
    "I64",
    "F32",
    "F64",
    "PTR",
    "Opcode",
    "ICmpPred",
    "FCmpPred",
    "Value",
    "Constant",
    "Argument",
    "GlobalVariable",
    "UndefValue",
    "Instruction",
    "PhiInstruction",
    "BasicBlock",
    "Function",
    "Module",
    "IRBuilder",
    "VerificationError",
    "verify_function",
    "verify_module",
    "print_module",
    "print_function",
    "IrParseError",
    "parse_module",
    "DataFlowGraph",
    "ControlFlowInfo",
]
