"""IR type system.

A deliberately small, LLVM-flavoured scalar type system: ``void``, integers
of 1/8/16/32/64 bits, IEEE floats of 32/64 bits, and an opaque byte-addressed
pointer type. Aggregates are handled by the frontend, which lowers arrays and
structs to pointer arithmetic (as llvm-gcc does before the ISE algorithms see
the code).

The scalar-only discipline mirrors the bitcode the paper's candidate
search inspects (Figure 2): aggregates are gone before ISE identification
runs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Type:
    """A scalar IR type.

    Attributes:
        kind: one of ``void``, ``int``, ``float``, ``ptr``.
        bits: bit width (0 for void; 64 for ptr).
    """

    kind: str
    bits: int

    @property
    def is_void(self) -> bool:
        return self.kind == "void"

    @property
    def is_int(self) -> bool:
        return self.kind == "int"

    @property
    def is_float(self) -> bool:
        return self.kind == "float"

    @property
    def is_ptr(self) -> bool:
        return self.kind == "ptr"

    @property
    def is_bool(self) -> bool:
        return self.kind == "int" and self.bits == 1

    @property
    def size_bytes(self) -> int:
        """Storage size in bytes (pointers are 8 bytes, i1 stored as 1 byte)."""
        if self.is_void:
            raise ValueError("void has no storage size")
        return max(1, self.bits // 8)

    def __str__(self) -> str:
        if self.is_void:
            return "void"
        if self.is_ptr:
            return "ptr"
        prefix = "i" if self.is_int else "f"
        return f"{prefix}{self.bits}"


VOID = Type("void", 0)
I1 = Type("int", 1)
I8 = Type("int", 8)
I16 = Type("int", 16)
I32 = Type("int", 32)
I64 = Type("int", 64)
F32 = Type("float", 32)
F64 = Type("float", 64)
PTR = Type("ptr", 64)

_BY_NAME = {
    "void": VOID,
    "i1": I1,
    "i8": I8,
    "i16": I16,
    "i32": I32,
    "i64": I64,
    "f32": F32,
    "f64": F64,
    "ptr": PTR,
}


def type_from_name(name: str) -> Type:
    """Look up a type by its textual name (``i32``, ``f64``, ``ptr``, ...)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown IR type: {name!r}") from None


def int_min(ty: Type) -> int:
    """Smallest representable signed value of an integer type."""
    if not ty.is_int:
        raise ValueError(f"not an integer type: {ty}")
    return -(1 << (ty.bits - 1)) if ty.bits > 1 else 0


def int_max_signed(ty: Type) -> int:
    if not ty.is_int:
        raise ValueError(f"not an integer type: {ty}")
    return (1 << (ty.bits - 1)) - 1 if ty.bits > 1 else 1


def wrap_int(value: int, ty: Type) -> int:
    """Wrap a Python int to the two's-complement signed range of *ty*.

    The interpreter and constant folder use this to reproduce fixed-width
    integer semantics on top of Python's unbounded ints.
    """
    if not ty.is_int:
        raise ValueError(f"not an integer type: {ty}")
    bits = ty.bits
    mask = (1 << bits) - 1
    value &= mask
    if bits > 1 and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def to_unsigned(value: int, ty: Type) -> int:
    """Reinterpret a (possibly negative) wrapped value as unsigned."""
    if not ty.is_int:
        raise ValueError(f"not an integer type: {ty}")
    return value & ((1 << ty.bits) - 1)
