"""Modules: the top-level IR container (globals + functions).

A module is the unit the paper's tool flow compiles, profiles and
specializes (Figure 1).
"""

from __future__ import annotations

from typing import Iterator

from repro.ir.function import Function
from repro.ir.types import Type
from repro.ir.values import GlobalVariable


class Module:
    """A translation unit: named functions and global variables.

    The compiler produces one module per application; the VM loads a module
    and lays out its globals in memory before execution.
    """

    __slots__ = ("name", "functions", "globals", "source_info")

    def __init__(self, name: str) -> None:
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVariable] = {}
        # Populated by the frontend: {"files": int, "loc": int}
        self.source_info: dict[str, int] = {}

    # -- construction ----------------------------------------------------------
    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r} in module {self.name}")
        func.parent = self
        self.functions[func.name] = func
        return func

    def declare_function(
        self, name: str, return_type: Type, arg_types: list[tuple[str, Type]]
    ) -> Function:
        return self.add_function(Function(name, return_type, arg_types))

    def add_global(
        self,
        name: str,
        elem_type: Type,
        count: int = 1,
        initializer: list | None = None,
    ) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"duplicate global {name!r} in module {self.name}")
        gv = GlobalVariable(name, elem_type, count, initializer)
        self.globals[name] = gv
        return gv

    # -- queries -----------------------------------------------------------
    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function {name!r} in module {self.name}") from None

    def defined_functions(self) -> Iterator[Function]:
        return (f for f in self.functions.values() if not f.is_declaration)

    @property
    def basic_block_count(self) -> int:
        return sum(len(f.blocks) for f in self.functions.values())

    @property
    def instruction_count(self) -> int:
        return sum(f.instruction_count for f in self.functions.values())

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{self.basic_block_count} blocks, {self.instruction_count} instrs>"
        )
