"""Functions: argument lists plus an ordered list of basic blocks.

Functions partition the bitcode the paper's tool flow profiles and
searches for custom-instruction candidates (Figures 1 and 2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction
from repro.ir.types import Type
from repro.ir.values import Argument

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.module import Module


class Function:
    """An IR function.

    The first block in ``blocks`` is the entry block. Value names are made
    unique per-function via ``next_value_id``.
    """

    __slots__ = (
        "name",
        "return_type",
        "args",
        "blocks",
        "parent",
        "next_value_id",
        "attributes",
    )

    def __init__(self, name: str, return_type: Type, arg_types: list[tuple[str, Type]]):
        self.name = name
        self.return_type = return_type
        self.args: list[Argument] = []
        for i, (arg_name, ty) in enumerate(arg_types):
            arg = Argument(ty, arg_name or f"arg{i}", i)
            arg.function = self
            self.args.append(arg)
        self.blocks: list[BasicBlock] = []
        self.parent: "Module | None" = None
        self.next_value_id = 0
        # Free-form attributes, e.g. {"inline_hint": True, "no_inline": True}
        self.attributes: dict[str, object] = {}

    # -- construction ------------------------------------------------------
    def add_block(self, name: str = "") -> BasicBlock:
        if not name:
            name = f"bb{len(self.blocks)}"
        if any(b.name == name for b in self.blocks):
            raise ValueError(f"duplicate block name {name!r} in function {self.name}")
        block = BasicBlock(name, parent=self)
        self.blocks.append(block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def fresh_name(self, hint: str = "v") -> str:
        self.next_value_id += 1
        return f"{hint}{self.next_value_id}"

    # -- queries -------------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    def block_named(self, name: str) -> BasicBlock:
        for b in self.blocks:
            if b.name == name:
                return b
        raise KeyError(f"no block named {name!r} in function {self.name}")

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    @property
    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Function {self.name}({', '.join(str(a.type) for a in self.args)}) "
            f"-> {self.return_type}, {len(self.blocks)} blocks>"
        )
