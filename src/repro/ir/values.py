"""SSA values: the base class plus constants, arguments and globals.

Instructions (defined in :mod:`repro.ir.instructions`) are also values; the
classes here are the non-instruction leaves of the operand graph.

Together with instructions, these leaves form the operand graphs the
paper's candidate search walks (Figure 2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ir.types import Type, wrap_int

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.function import Function


class Value:
    """Base class of everything that can appear as an instruction operand."""

    __slots__ = ("type", "name")

    def __init__(self, ty: Type, name: str = "") -> None:
        self.type = ty
        self.name = name

    def ref(self) -> str:
        """Short textual reference used by the printer (e.g. ``%x``)."""
        return f"%{self.name}" if self.name else "%?"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.ref()}: {self.type}>"


class Constant(Value):
    """A typed immediate constant.

    Integer constants are stored wrapped to their type's signed range;
    float constants as Python floats.
    """

    __slots__ = ("value",)

    def __init__(self, ty: Type, value) -> None:
        super().__init__(ty, "")
        if ty.is_int:
            value = wrap_int(int(value), ty)
        elif ty.is_float:
            value = float(value)
        elif ty.is_ptr:
            value = int(value)
        else:
            raise ValueError(f"cannot build constant of type {ty}")
        self.value = value

    def ref(self) -> str:
        return f"{self.type} {self.value}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and self.type == other.type
            and self.value == other.value
            # Distinguish 0.0 from -0.0 and int 0 from float 0.0.
            and type(self.value) is type(other.value)
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class UndefValue(Value):
    """An undefined value of a given type (used for uninitialised reads)."""

    __slots__ = ()

    def ref(self) -> str:
        return f"{self.type} undef"


class Argument(Value):
    """A formal function argument."""

    __slots__ = ("function", "index")

    def __init__(self, ty: Type, name: str, index: int) -> None:
        super().__init__(ty, name)
        self.function: "Function | None" = None
        self.index = index


class GlobalVariable(Value):
    """A module-level variable backed by a region of VM memory.

    Attributes:
        elem_type: scalar element type of the underlying storage.
        count: number of elements (1 for scalars).
        initializer: optional flat list of initial element values.
        address: assigned by the VM loader at module load time.
    """

    __slots__ = ("elem_type", "count", "initializer", "address")

    def __init__(
        self,
        name: str,
        elem_type: Type,
        count: int = 1,
        initializer: list | None = None,
    ) -> None:
        from repro.ir.types import PTR

        super().__init__(PTR, name)
        if count < 1:
            raise ValueError("global variable must have at least one element")
        if initializer is not None and len(initializer) > count:
            raise ValueError("initializer longer than variable")
        self.elem_type = elem_type
        self.count = count
        self.initializer = initializer
        self.address: int | None = None

    @property
    def size_bytes(self) -> int:
        return self.elem_type.size_bytes * self.count

    def ref(self) -> str:
        return f"@{self.name}"
