"""Opcode definitions and static opcode metadata.

The metadata here is consumed throughout the system:

- the verifier checks operand counts / types per opcode,
- the interpreter dispatches on opcodes,
- the ISE feasibility analysis (:mod:`repro.ise.feasibility`) uses
  :func:`is_hw_feasible` to exclude memory accesses, calls and control flow
  from custom-instruction candidates — the paper's central structural
  limitation (Section V.D),
- the PivPav IP-core library keys its circuit database by opcode.
"""

from __future__ import annotations

from enum import Enum


class Opcode(str, Enum):
    """All IR opcodes. Values double as the textual mnemonic."""

    # Integer binary arithmetic / bitwise
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SDIV = "sdiv"
    UDIV = "udiv"
    SREM = "srem"
    UREM = "urem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"

    # Floating point binary arithmetic
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FREM = "frem"

    # Unary
    FNEG = "fneg"

    # Comparisons
    ICMP = "icmp"
    FCMP = "fcmp"

    # Casts
    ZEXT = "zext"
    SEXT = "sext"
    TRUNC = "trunc"
    FPTOSI = "fptosi"
    SITOFP = "sitofp"
    FPEXT = "fpext"
    FPTRUNC = "fptrunc"
    BITCAST = "bitcast"

    # Data movement / selection
    SELECT = "select"
    PHI = "phi"

    # Memory
    ALLOCA = "alloca"
    LOAD = "load"
    STORE = "store"
    GEP = "gep"

    # Control
    BR = "br"
    CONDBR = "condbr"
    RET = "ret"
    CALL = "call"

    # Custom instruction reference (inserted by the binary patcher after
    # ASIP specialization; executes a whole candidate DFG in one step).
    CUSTOM = "custom"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ICmpPred(str, Enum):
    """Integer comparison predicates (signed and unsigned)."""

    EQ = "eq"
    NE = "ne"
    SLT = "slt"
    SLE = "sle"
    SGT = "sgt"
    SGE = "sge"
    ULT = "ult"
    ULE = "ule"
    UGT = "ugt"
    UGE = "uge"


class FCmpPred(str, Enum):
    """Floating-point comparison predicates (ordered only)."""

    OEQ = "oeq"
    ONE = "one"
    OLT = "olt"
    OLE = "ole"
    OGT = "ogt"
    OGE = "oge"


INT_BINARY_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.SDIV,
        Opcode.UDIV,
        Opcode.SREM,
        Opcode.UREM,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.LSHR,
        Opcode.ASHR,
    }
)

FLOAT_BINARY_OPS = frozenset(
    {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FREM}
)

BINARY_OPS = INT_BINARY_OPS | FLOAT_BINARY_OPS

CAST_OPS = frozenset(
    {
        Opcode.ZEXT,
        Opcode.SEXT,
        Opcode.TRUNC,
        Opcode.FPTOSI,
        Opcode.SITOFP,
        Opcode.FPEXT,
        Opcode.FPTRUNC,
        Opcode.BITCAST,
    }
)

TERMINATOR_OPS = frozenset({Opcode.BR, Opcode.CONDBR, Opcode.RET})

MEMORY_OPS = frozenset({Opcode.ALLOCA, Opcode.LOAD, Opcode.STORE})

COMMUTATIVE_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.MUL,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.FADD,
        Opcode.FMUL,
    }
)

# Opcodes whose results may be folded / CSE'd freely (no side effects and
# no dependence on memory state).
PURE_OPS = (
    BINARY_OPS
    | CAST_OPS
    | frozenset({Opcode.ICMP, Opcode.FCMP, Opcode.SELECT, Opcode.FNEG, Opcode.GEP})
)

# Opcodes that can be implemented inside a hardware custom instruction.
#
# The paper (Section V.D) notes that "accesses to global variables or
# memory ... cannot be included in a hardware custom instruction"; control
# flow, calls and phi nodes are likewise infeasible because a Woolcano
# custom instruction is a pure feed-forward datapath between the register
# file read and write ports.
HW_FEASIBLE_OPS = PURE_OPS


def is_terminator(op: Opcode) -> bool:
    return op in TERMINATOR_OPS


def is_binary(op: Opcode) -> bool:
    return op in BINARY_OPS


def is_cast(op: Opcode) -> bool:
    return op in CAST_OPS


def is_pure(op: Opcode) -> bool:
    return op in PURE_OPS


def is_hw_feasible(op: Opcode) -> bool:
    """Whether an opcode may appear inside a custom-instruction candidate."""
    return op in HW_FEASIBLE_OPS


def has_result(op: Opcode, result_type_is_void: bool = False) -> bool:
    """Whether instructions with this opcode define an SSA value."""
    if op in (Opcode.STORE, Opcode.BR, Opcode.CONDBR, Opcode.RET):
        return False
    if op is Opcode.CALL and result_type_is_void:
        return False
    return True
