"""Per-basic-block dataflow graphs.

The ISE algorithms of the paper operate on the dataflow graph (DFG) of each
basic block: nodes are the block's instructions, edges are SSA def-use
relations within the block. Values flowing in from outside the block
(arguments, phis, instructions in other blocks, constants) are graph inputs;
instruction results used outside the block (or by instructions excluded from
a candidate) are graph outputs.

Built on :class:`networkx.DiGraph` so that standard graph algorithms
(topological sort, ancestors/descendants for convexity checks) are available
to the identification algorithms.
"""

from __future__ import annotations

import networkx as nx

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction, PhiInstruction
from repro.ir.values import Value


class DataFlowGraph:
    """Dataflow graph of one basic block.

    Nodes are :class:`Instruction` objects (phis and the terminator are kept
    out of the graph body: phis act as external inputs, the terminator as an
    external consumer).
    """

    def __init__(self, block: BasicBlock) -> None:
        self.block = block
        self.graph: nx.DiGraph = nx.DiGraph()
        self._body: list[Instruction] = []
        self._body_ids: set[int] = set()

        terminator = block.terminator
        for instr in block.instructions:
            if isinstance(instr, PhiInstruction) or instr is terminator:
                continue
            self._body.append(instr)
            self._body_ids.add(id(instr))
            self.graph.add_node(instr)

        for instr in self._body:
            for operand in instr.operands:
                if isinstance(operand, Instruction) and id(operand) in self._body_ids:
                    self.graph.add_edge(operand, instr)

        self._external_uses = self._compute_external_uses()

    # -- node sets -------------------------------------------------------------
    @property
    def nodes(self) -> list[Instruction]:
        """Body instructions in original program order."""
        return list(self._body)

    def __len__(self) -> int:
        return len(self._body)

    def contains(self, instr: Instruction) -> bool:
        return id(instr) in self._body_ids

    # -- inputs / outputs ----------------------------------------------------
    def inputs_of(self, nodes: set[Instruction] | frozenset[Instruction]) -> list[Value]:
        """Distinct external data inputs of a node subset.

        Constants are not counted as inputs (they are baked into the
        hardware datapath), matching common ISE I/O-constraint practice.
        """
        from repro.ir.values import Constant

        node_ids = {id(n) for n in nodes}
        seen: dict[int, Value] = {}
        for instr in nodes:
            for operand in instr.operands:
                if isinstance(operand, Constant):
                    continue
                if isinstance(operand, Instruction) and id(operand) in node_ids:
                    continue
                seen.setdefault(id(operand), operand)
        return list(seen.values())

    def outputs_of(self, nodes: set[Instruction] | frozenset[Instruction]) -> list[Instruction]:
        """Subset members whose results are consumed outside the subset."""
        node_ids = {id(n) for n in nodes}
        outs = []
        for instr in nodes:
            if not instr.has_result:
                continue
            used_outside = False
            for consumer in self.graph.successors(instr):
                if id(consumer) not in node_ids:
                    used_outside = True
                    break
            if not used_outside and self._external_uses.get(id(instr), False):
                used_outside = True
            if used_outside:
                outs.append(instr)
        return outs

    def _compute_external_uses(self) -> dict[int, bool]:
        """Which body instructions are used outside the DFG body.

        "Outside" means: by the block terminator, by phis in this block, or
        by any instruction in another block of the function.
        """
        external: dict[int, bool] = {}
        func = self.block.parent
        if func is None:
            return external
        for block in func.blocks:
            for instr in block.instructions:
                in_body = id(instr) in self._body_ids and not isinstance(
                    instr, PhiInstruction
                )
                is_our_terminator = instr is self.block.terminator
                if in_body and not is_our_terminator and block is self.block:
                    continue
                for operand in instr.operands:
                    if isinstance(operand, Instruction) and id(operand) in self._body_ids:
                        external[id(operand)] = True
        return external

    # -- convexity ---------------------------------------------------------
    def is_convex(self, nodes: set[Instruction] | frozenset[Instruction]) -> bool:
        """A subset is convex if no path between two members leaves the subset.

        Convexity is required for a candidate to be schedulable as a single
        atomic instruction.
        """
        node_set = set(nodes)
        node_ids = {id(n) for n in node_set}
        for node in node_set:
            for succ in self.graph.successors(node):
                if id(succ) in node_ids:
                    continue
                # Walk forward from the external successor; if we re-enter the
                # subset, the subset is non-convex.
                for reach in nx.descendants(self.graph, succ):
                    if id(reach) in node_ids:
                        return False
        return True

    def topological_order(self, nodes: set[Instruction] | None = None) -> list[Instruction]:
        """Topological order of the whole body or of an induced subgraph."""
        if nodes is None:
            graph = self.graph
        else:
            graph = self.graph.subgraph(nodes)
        order = list(nx.topological_sort(graph))
        # Stabilize: networkx topological sort is not deterministic across
        # runs for equal-rank nodes; tie-break by program order.
        rank = {id(n): i for i, n in enumerate(self._body)}
        # Kahn with deterministic tie-breaks:
        indeg = {n: graph.in_degree(n) for n in graph.nodes}
        ready = sorted(
            (n for n, d in indeg.items() if d == 0), key=lambda n: rank[id(n)]
        )
        out: list[Instruction] = []
        import heapq

        heap = [(rank[id(n)], id(n), n) for n in ready]
        heapq.heapify(heap)
        while heap:
            _, _, node = heapq.heappop(heap)
            out.append(node)
            for succ in graph.successors(node):
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    heapq.heappush(heap, (rank[id(succ)], id(succ), succ))
        if len(out) != len(order):  # pragma: no cover - cycle guard
            raise ValueError("dataflow graph contains a cycle")
        return out

    def critical_path_length(
        self,
        nodes: set[Instruction] | frozenset[Instruction],
        weight_fn,
    ) -> float:
        """Longest weighted path through the induced subgraph.

        ``weight_fn(instr) -> float`` gives each node's latency; used by the
        PivPav estimator to compute a candidate's hardware latency.
        """
        node_set = set(nodes)
        dist: dict[int, float] = {}
        best = 0.0
        for instr in self.topological_order(node_set):
            w = weight_fn(instr)
            d = w
            for pred in self.graph.predecessors(instr):
                if pred in node_set and id(pred) in dist:
                    d = max(d, dist[id(pred)] + w)
            dist[id(instr)] = d
            best = max(best, d)
        return best
