"""Instruction classes.

An :class:`Instruction` is an SSA value with an opcode and operand list.
A few opcodes carry extra static attributes (comparison predicate, GEP
element size, call target, branch targets); these live in ``attrs`` fields
rather than subclasses, except PHI which genuinely needs different structure
(per-predecessor incoming values).

Instruction def-use edges form the per-block dataflow graphs in which
the paper's candidate search looks for custom instructions (Figure 2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.ir.opcodes import (
    Opcode,
    ICmpPred,
    FCmpPred,
    is_terminator,
)
from repro.ir.types import Type, VOID
from repro.ir.values import Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.basicblock import BasicBlock
    from repro.ir.function import Function


class Instruction(Value):
    """A single IR instruction.

    Attributes:
        opcode: the :class:`Opcode`.
        operands: list of :class:`Value` operands (data inputs only; branch
            targets are stored separately in ``targets``).
        targets: successor blocks for terminators (``BR``: 1, ``CONDBR``: 2
            in (true, false) order).
        pred: comparison predicate for ICMP/FCMP.
        callee: called :class:`Function` or intrinsic name for CALL.
        elem_size: element size in bytes for GEP and ALLOCA.
        alloc_count: element count for ALLOCA.
        custom_id: identifier of the custom instruction for CUSTOM opcodes.
        parent: owning basic block (set on insertion).
    """

    __slots__ = (
        "opcode",
        "operands",
        "targets",
        "pred",
        "callee",
        "elem_size",
        "alloc_count",
        "custom_id",
        "parent",
    )

    def __init__(
        self,
        opcode: Opcode,
        ty: Type,
        operands: list[Value],
        name: str = "",
        *,
        targets: Optional[list["BasicBlock"]] = None,
        pred: ICmpPred | FCmpPred | None = None,
        callee=None,
        elem_size: int = 0,
        alloc_count: int = 1,
        custom_id: int = -1,
    ) -> None:
        super().__init__(ty, name)
        self.opcode = opcode
        self.operands = list(operands)
        self.targets = list(targets) if targets else []
        self.pred = pred
        self.callee = callee
        self.elem_size = elem_size
        self.alloc_count = alloc_count
        self.custom_id = custom_id
        self.parent: "BasicBlock | None" = None

    # -- structural queries ---------------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return is_terminator(self.opcode)

    @property
    def has_result(self) -> bool:
        return not self.type.is_void and self.opcode not in (
            Opcode.STORE,
            Opcode.BR,
            Opcode.CONDBR,
            Opcode.RET,
        )

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of *old* in the operand list; return count."""
        n = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                n += 1
        return n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.ir.printer import format_instruction

        return f"<Instruction {format_instruction(self)}>"


class PhiInstruction(Instruction):
    """SSA phi node: selects an incoming value based on the CFG predecessor.

    ``incoming`` is a list of ``(value, block)`` pairs kept in sync with
    ``operands`` (which holds just the values, so generic operand-walking
    code works unchanged).
    """

    __slots__ = ("incoming_blocks",)

    def __init__(self, ty: Type, name: str = "") -> None:
        super().__init__(Opcode.PHI, ty, [], name)
        self.incoming_blocks: list["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type != self.type:
            raise TypeError(
                f"phi {self.ref()} of type {self.type} given incoming of type {value.type}"
            )
        self.operands.append(value)
        self.incoming_blocks.append(block)

    @property
    def incoming(self) -> list[tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for(self, block: "BasicBlock") -> Value:
        for val, blk in zip(self.operands, self.incoming_blocks):
            if blk is block:
                return val
        raise KeyError(f"phi {self.ref()} has no incoming value for {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        for i, blk in enumerate(self.incoming_blocks):
            if blk is block:
                del self.incoming_blocks[i]
                del self.operands[i]
                return
        raise KeyError(f"phi {self.ref()} has no incoming value for {block.name}")
