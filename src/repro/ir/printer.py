"""Textual IR printer (LLVM-flavoured, for debugging and golden tests).

Gives the reproduction's LLVM-bitcode stand-in (paper Figure 1) a
stable textual form.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Instruction, PhiInstruction
from repro.ir.module import Module
from repro.ir.opcodes import Opcode
from repro.ir.values import Argument, Constant, GlobalVariable, UndefValue, Value


def format_value(value: Value) -> str:
    if isinstance(value, Constant):
        return f"{value.type} {value.value}"
    if isinstance(value, UndefValue):
        return f"{value.type} undef"
    if isinstance(value, GlobalVariable):
        return f"ptr @{value.name}"
    if isinstance(value, (Instruction, Argument)):
        return f"{value.type} %{value.name}"
    return repr(value)  # pragma: no cover


def format_instruction(instr: Instruction) -> str:
    op = instr.opcode
    if isinstance(instr, PhiInstruction):
        incoming = ", ".join(
            f"[{format_value(v)}, {b.name}]" for v, b in instr.incoming
        )
        return f"%{instr.name} = phi {instr.type} {incoming}"
    if op is Opcode.BR:
        return f"br {instr.targets[0].name}"
    if op is Opcode.CONDBR:
        return (
            f"condbr {format_value(instr.operands[0])}, "
            f"{instr.targets[0].name}, {instr.targets[1].name}"
        )
    if op is Opcode.RET:
        if instr.operands:
            return f"ret {format_value(instr.operands[0])}"
        return "ret void"
    if op is Opcode.STORE:
        return (
            f"store {format_value(instr.operands[0])}, "
            f"{format_value(instr.operands[1])}"
        )
    if op is Opcode.ALLOCA:
        return (
            f"%{instr.name} = alloca {instr.elem_size} x {instr.alloc_count}"
        )
    if op is Opcode.GEP:
        return (
            f"%{instr.name} = gep {format_value(instr.operands[0])}, "
            f"{format_value(instr.operands[1])}, elem_size={instr.elem_size}"
        )
    if op is Opcode.CALL:
        callee = instr.callee if isinstance(instr.callee, str) else instr.callee.name
        args = ", ".join(format_value(a) for a in instr.operands)
        if instr.has_result:
            return f"%{instr.name} = call {instr.type} @{callee}({args})"
        return f"call void @{callee}({args})"
    if op in (Opcode.ICMP, Opcode.FCMP):
        return (
            f"%{instr.name} = {op.value} {instr.pred.value} "
            f"{format_value(instr.operands[0])}, {format_value(instr.operands[1])}"
        )
    if op is Opcode.CUSTOM:
        args = ", ".join(format_value(a) for a in instr.operands)
        return f"%{instr.name} = custom {instr.type} #{instr.custom_id}({args})"
    if op is Opcode.LOAD:
        return f"%{instr.name} = load {instr.type}, {format_value(instr.operands[0])}"
    # generic: binops, casts, select, fneg
    operands = ", ".join(format_value(o) for o in instr.operands)
    prefix = f"%{instr.name} = " if instr.has_result else ""
    suffix = f" -> {instr.type}" if op.value in _CAST_NAMES else ""
    return f"{prefix}{op.value} {operands}{suffix}"


_CAST_NAMES = {
    "zext",
    "sext",
    "trunc",
    "fptosi",
    "sitofp",
    "fpext",
    "fptrunc",
    "bitcast",
}


def print_function(func: Function, annotate=None) -> str:
    """Print one function; ``annotate(func_name, block_name)`` may return a
    comment appended to that block's label line (profiling heat, coverage
    classes, ...) or None for no annotation."""
    args = ", ".join(f"{a.type} %{a.name}" for a in func.args)
    lines = [f"define {func.return_type} @{func.name}({args}) {{"]
    for block in func.blocks:
        label = f"{block.name}:"
        if annotate is not None:
            note = annotate(func.name, block.name)
            if note:
                label = f"{label}{' ' * max(1, 24 - len(label))}; {note}"
        lines.append(label)
        for instr in block.instructions:
            lines.append(f"  {format_instruction(instr)}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module, annotate=None) -> str:
    parts = [f"; module {module.name}"]
    for gv in module.globals.values():
        if gv.initializer is None:
            init = ""
        else:
            values = ", ".join(repr(v) for v in gv.initializer)
            init = f" init [{values}]"
        parts.append(f"@{gv.name} = global {gv.elem_type} x {gv.count}{init}")
    for func in module.functions.values():
        if func.is_declaration:
            args = ", ".join(str(a.type) for a in func.args)
            parts.append(f"declare {func.return_type} @{func.name}({args})")
        else:
            parts.append(print_function(func, annotate=annotate))
    return "\n\n".join(parts)
