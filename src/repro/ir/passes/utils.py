"""Shared helpers for passes.

Shared by the passes standing in for LLVM's -O pipeline in the
paper's Figure 1 tool flow.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.values import Value


def replace_all_uses(func: Function, old: Value, new: Value) -> int:
    """Replace every operand reference to *old* with *new* in *func*.

    Returns the number of replaced operand slots. Branch targets and phi
    incoming-block lists are unaffected (those reference blocks, not values).
    """
    count = 0
    for block in func.blocks:
        for instr in block.instructions:
            count += instr.replace_operand(old, new)
    return count


def erase_instruction(instr: Instruction) -> None:
    """Remove an instruction from its parent block."""
    if instr.parent is None:
        raise ValueError("instruction has no parent")
    instr.parent.remove(instr)


def users_of(func: Function, value: Value) -> list[Instruction]:
    """All instructions in *func* that use *value* as an operand."""
    out = []
    for block in func.blocks:
        for instr in block.instructions:
            if any(op is value for op in instr.operands):
                out.append(instr)
    return out


def build_use_counts(func: Function) -> dict[int, int]:
    """Map ``id(value) -> number of operand uses`` across the function."""
    counts: dict[int, int] = {}
    for block in func.blocks:
        for instr in block.instructions:
            for op in instr.operands:
                counts[id(op)] = counts.get(id(op), 0) + 1
    return counts
