"""Loop-invariant code motion (conservative).

Hoists pure instructions whose operands are all loop-invariant out of
natural loops. Hoisting requires a *preheader*: a unique out-of-loop
predecessor of the header whose only successor is the header. The frontend's
loop lowering produces such blocks for ``while``/``for`` loops, so this pass
does not create preheaders itself — loops without one are skipped.

Division is not hoisted (it may trap and the loop body may be guarded).

Mirrors the LLVM loop optimizations the paper's tool flow applies
before profiling and candidate search (Figure 1).
"""

from __future__ import annotations

from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import ControlFlowInfo, NaturalLoop
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode, is_pure
from repro.ir.passes.manager import FunctionPass
from repro.ir.values import Constant, Value

_NO_HOIST = {Opcode.SDIV, Opcode.UDIV, Opcode.SREM, Opcode.UREM, Opcode.PHI}


class LoopInvariantCodeMotionPass(FunctionPass):
    name = "licm"

    def run_on_function(self, func: Function) -> bool:
        cfg = ControlFlowInfo(func)
        changed = False
        # Process larger (outer) loops last so inner-loop hoists can cascade.
        for loop in sorted(cfg.loops, key=lambda l: len(l.members)):
            preheader = self._find_preheader(cfg, loop)
            if preheader is None:
                continue
            changed |= self._hoist_from_loop(loop, preheader)
        return changed

    @staticmethod
    def _find_preheader(cfg: ControlFlowInfo, loop: NaturalLoop) -> BasicBlock | None:
        outside_preds = [
            p for p in cfg.predecessors(loop.header) if not loop.contains(p)
        ]
        if len(outside_preds) != 1:
            return None
        preheader = outside_preds[0]
        if len(preheader.successors) != 1:
            return None
        return preheader

    def _hoist_from_loop(self, loop: NaturalLoop, preheader: BasicBlock) -> bool:
        loop_defs: set[int] = set()
        for block in loop.members:
            for instr in block.instructions:
                loop_defs.add(id(instr))

        changed = False
        hoisted = True
        while hoisted:
            hoisted = False
            for block in loop.members:
                for instr in list(block.instructions):
                    if not self._hoistable(instr, loop_defs):
                        continue
                    block.remove(instr)
                    term = preheader.terminator
                    assert term is not None
                    preheader.remove(term)
                    preheader.append(instr)
                    preheader.append(term)
                    loop_defs.discard(id(instr))
                    hoisted = True
                    changed = True
        return changed

    @staticmethod
    def _hoistable(instr: Instruction, loop_defs: set[int]) -> bool:
        if not is_pure(instr.opcode) or instr.opcode in _NO_HOIST:
            return False
        for op in instr.operands:
            if isinstance(op, Instruction) and id(op) in loop_defs:
                return False
        return True
