"""Promote stack slots (allocas) to SSA registers.

The frontend lowers every local variable to an ``alloca`` plus loads and
stores. Left that way, almost every instruction in a hot block would touch
memory and thus be hardware-infeasible for custom instructions, which would
trivially destroy the paper's results. This pass performs the classic SSA
construction (Cytron et al.): phi insertion at iterated dominance frontiers
followed by a renaming walk over the dominator tree.

An alloca is promotable iff it is a single scalar slot and its pointer is
used only as the direct address of loads and stores (never stored itself,
passed to a call, or offset via GEP).
"""

from __future__ import annotations

from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import ControlFlowInfo
from repro.ir.function import Function
from repro.ir.instructions import Instruction, PhiInstruction
from repro.ir.opcodes import Opcode
from repro.ir.passes.manager import FunctionPass
from repro.ir.types import Type
from repro.ir.values import UndefValue, Value


def _dominator_tree_children(
    cfg: ControlFlowInfo,
) -> dict[int, list[BasicBlock]]:
    children: dict[int, list[BasicBlock]] = {id(b): [] for b in cfg.rpo}
    for block in cfg.rpo:
        idom = cfg.immediate_dominator(block)
        if idom is not None:
            children[id(idom)].append(block)
    return children


def compute_dominance_frontiers(
    cfg: ControlFlowInfo,
) -> dict[int, set[int]]:
    """Dominance frontiers per block (Cooper-Harvey-Kennedy)."""
    frontiers: dict[int, set[int]] = {id(b): set() for b in cfg.rpo}
    blocks_by_id = {id(b): b for b in cfg.rpo}
    for block in cfg.rpo:
        preds = cfg.predecessors(block)
        if len(preds) < 2:
            continue
        idom = cfg.immediate_dominator(block)
        for pred in preds:
            runner = pred
            while runner is not None and runner is not idom:
                frontiers[id(runner)].add(id(block))
                runner = cfg.immediate_dominator(runner)
    # Attach block objects for convenience.
    return {k: {f for f in v} for k, v in frontiers.items()}


class Mem2RegPass(FunctionPass):
    name = "mem2reg"

    def run_on_function(self, func: Function) -> bool:
        allocas = self._promotable_allocas(func)
        if not allocas:
            return False
        cfg = ControlFlowInfo(func)
        blocks_by_id = {id(b): b for b in cfg.rpo}
        frontiers = compute_dominance_frontiers(cfg)
        children = _dominator_tree_children(cfg)

        # Phase 1: insert (empty) phi nodes at iterated dominance frontiers
        # of every block containing a store to the alloca.
        phi_owner: dict[int, tuple[Instruction, PhiInstruction]] = {}
        slot_types = {id(a): self._slot_type(func, a) for a in allocas}
        for alloca in allocas:
            ty = slot_types[id(alloca)]
            if ty is None:
                continue
            def_blocks = {
                id(instr.parent)
                for instr in self._users(func, alloca)
                if instr.opcode is Opcode.STORE
            }
            placed: set[int] = set()
            worklist = list(def_blocks)
            while worklist:
                bid = worklist.pop()
                for fid in frontiers.get(bid, ()):
                    if fid in placed:
                        continue
                    placed.add(fid)
                    block = blocks_by_id[fid]
                    phi = PhiInstruction(ty, func.fresh_name("phi"))
                    block.insert(0, phi)
                    phi_owner[id(phi)] = (alloca, phi)
                    if fid not in def_blocks:
                        worklist.append(fid)

        # Phase 2: renaming walk over the dominator tree.
        alloca_ids = {id(a) for a in allocas if slot_types[id(a)] is not None}
        undef_cache: dict[int, UndefValue] = {}

        def current_undef(alloca: Instruction) -> UndefValue:
            if id(alloca) not in undef_cache:
                undef_cache[id(alloca)] = UndefValue(slot_types[id(alloca)])
            return undef_cache[id(alloca)]

        # Stack of live definitions per alloca.
        stacks: dict[int, list[Value]] = {aid: [] for aid in alloca_ids}

        def top(alloca_id: int, alloca: Instruction) -> Value:
            stack = stacks[alloca_id]
            return stack[-1] if stack else current_undef(alloca)

        allocas_by_id = {id(a): a for a in allocas}
        to_erase: list[Instruction] = []

        def rename(block: BasicBlock) -> None:
            pushed: list[int] = []
            for instr in list(block.instructions):
                if isinstance(instr, PhiInstruction) and id(instr) in phi_owner:
                    alloca, _ = phi_owner[id(instr)]
                    stacks[id(alloca)].append(instr)
                    pushed.append(id(alloca))
                    continue
                if instr.opcode is Opcode.LOAD:
                    ptr = instr.operands[0]
                    if id(ptr) in alloca_ids:
                        value = top(id(ptr), allocas_by_id[id(ptr)])
                        _replace_uses_in_function(func, instr, value)
                        to_erase.append(instr)
                        continue
                if instr.opcode is Opcode.STORE:
                    ptr = instr.operands[1]
                    if id(ptr) in alloca_ids:
                        stacks[id(ptr)].append(instr.operands[0])
                        pushed.append(id(ptr))
                        to_erase.append(instr)
                        continue
            # Fill phi operands of CFG successors.
            for succ in block.successors:
                for phi in succ.phis():
                    if id(phi) in phi_owner:
                        alloca, _ = phi_owner[id(phi)]
                        phi.add_incoming(top(id(alloca), alloca), block)
            for child in children.get(id(block), []):
                rename(child)
            for aid in pushed:
                stacks[aid].pop()

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000))
        try:
            rename(func.entry)
        finally:
            sys.setrecursionlimit(old_limit)

        for instr in to_erase:
            if instr.parent is not None:
                instr.parent.remove(instr)
        for alloca in allocas:
            if slot_types[id(alloca)] is not None and alloca.parent is not None:
                alloca.parent.remove(alloca)

        # Drop inserted phis that ended up trivially dead or undefined-only.
        self._cleanup_trivial_phis(func, phi_owner)
        return True

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _users(func: Function, value: Value) -> list[Instruction]:
        out = []
        for block in func.blocks:
            for instr in block.instructions:
                if any(op is value for op in instr.operands):
                    out.append(instr)
        return out

    def _promotable_allocas(self, func: Function) -> list[Instruction]:
        out = []
        for block in func.blocks:
            for instr in block.instructions:
                if instr.opcode is not Opcode.ALLOCA or instr.alloc_count != 1:
                    continue
                if self._is_promotable(func, instr):
                    out.append(instr)
        return out

    @staticmethod
    def _is_promotable(func: Function, alloca: Instruction) -> bool:
        for block in func.blocks:
            for instr in block.instructions:
                for i, op in enumerate(instr.operands):
                    if op is not alloca:
                        continue
                    if instr.opcode is Opcode.LOAD:
                        continue
                    if instr.opcode is Opcode.STORE and i == 1:
                        continue  # used as the address
                    return False  # escapes: GEP, call argument, stored value...
        return True

    @staticmethod
    def _slot_type(func: Function, alloca: Instruction) -> Type | None:
        """Infer the scalar type stored in the slot (None if never accessed)."""
        ty: Type | None = None
        for block in func.blocks:
            for instr in block.instructions:
                if instr.opcode is Opcode.LOAD and instr.operands[0] is alloca:
                    candidate = instr.type
                elif instr.opcode is Opcode.STORE and instr.operands[1] is alloca:
                    candidate = instr.operands[0].type
                else:
                    continue
                if ty is None:
                    ty = candidate
                elif ty != candidate:
                    return None  # mixed-type slot: not promotable
        return ty

    @staticmethod
    def _cleanup_trivial_phis(
        func: Function, phi_owner: dict[int, tuple[Instruction, PhiInstruction]]
    ) -> None:
        """Iteratively remove phis that are unused or have a single value."""
        changed = True
        while changed:
            changed = False
            use_counts: dict[int, int] = {}
            for block in func.blocks:
                for instr in block.instructions:
                    for op in instr.operands:
                        use_counts[id(op)] = use_counts.get(id(op), 0) + 1
            for block in func.blocks:
                for phi in list(block.phis()):
                    if id(phi) not in phi_owner:
                        continue
                    if use_counts.get(id(phi), 0) == 0:
                        block.remove(phi)
                        changed = True
                        continue
                    distinct = {
                        id(v) for v in phi.operands if v is not phi
                    }
                    values = [v for v in phi.operands if v is not phi]
                    if len(distinct) == 1:
                        _replace_uses_in_function(func, phi, values[0])
                        block.remove(phi)
                        changed = True


def _replace_uses_in_function(func: Function, old: Value, new: Value) -> None:
    for block in func.blocks:
        for instr in block.instructions:
            instr.replace_operand(old, new)
