"""Function inlining.

Inlines calls to small, non-recursive functions (or any function marked
``inline_hint``). Cloning maps callee values to fresh instructions; the
call block is split at the call site, callee ``ret`` instructions become
branches to the continuation block, and a phi merges return values when the
callee has several returns.

Inlining enlarges basic blocks, which directly grows the candidate
dataflow graphs the paper's ISE algorithms search (Figure 2).
"""

from __future__ import annotations

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, PhiInstruction
from repro.ir.module import Module
from repro.ir.opcodes import Opcode
from repro.ir.passes.manager import ModulePass
from repro.ir.values import Value

DEFAULT_SIZE_THRESHOLD = 40


class InlinePass(ModulePass):
    name = "inline"

    def __init__(self, size_threshold: int = DEFAULT_SIZE_THRESHOLD) -> None:
        self.size_threshold = size_threshold

    def run(self, module: Module) -> bool:
        changed = False
        for func in list(module.defined_functions()):
            # Iterate because inlining may expose further inlinable calls;
            # bound the rounds to avoid pathological growth.
            for _ in range(4):
                call = self._find_inlinable_call(module, func)
                if call is None:
                    break
                self._inline_call(func, call)
                changed = True
        return changed

    # -- policy ------------------------------------------------------------
    def _find_inlinable_call(
        self, module: Module, func: Function
    ) -> Instruction | None:
        for block in func.blocks:
            for instr in block.instructions:
                if instr.opcode is not Opcode.CALL:
                    continue
                callee = instr.callee
                if isinstance(callee, str):
                    continue  # intrinsic
                if callee.is_declaration or callee is func:
                    continue
                if callee.attributes.get("no_inline"):
                    continue
                if self._is_recursive(callee):
                    continue
                small = callee.instruction_count <= self.size_threshold
                if small or callee.attributes.get("inline_hint"):
                    return instr
        return None

    @staticmethod
    def _is_recursive(func: Function) -> bool:
        for block in func.blocks:
            for instr in block.instructions:
                if instr.opcode is Opcode.CALL and instr.callee is func:
                    return True
        return False

    # -- mechanics ---------------------------------------------------------
    def _inline_call(self, caller: Function, call: Instruction) -> None:
        callee: Function = call.callee
        call_block = call.parent
        assert call_block is not None

        # 1. Split the call block: everything after the call moves to `cont`.
        cont = caller.add_block(caller.fresh_name(f"{callee.name}.cont."))
        call_index = call_block.instructions.index(call)
        tail = call_block.instructions[call_index + 1 :]
        del call_block.instructions[call_index + 1 :]
        for instr in tail:
            instr.parent = cont
            cont.instructions.append(instr)
        # Phi nodes in successors of the original block must be re-pointed
        # at `cont` (the terminator moved there).
        for succ in cont.successors:
            for phi in succ.phis():
                for i, inc in enumerate(phi.incoming_blocks):
                    if inc is call_block:
                        phi.incoming_blocks[i] = cont

        # 2. Clone the callee's *reachable* blocks and instructions
        # (unreachable blocks may contain placeholder returns the frontend
        # parked after explicit `return` statements).
        from repro.ir.cfg import reverse_postorder

        callee_blocks = reverse_postorder(callee)
        value_map: dict[int, Value] = {}
        for arg, actual in zip(callee.args, call.operands):
            value_map[id(arg)] = actual
        block_map: dict[int, BasicBlock] = {}
        for src_block in callee_blocks:
            clone = caller.add_block(
                caller.fresh_name(f"{callee.name}.{src_block.name}.")
            )
            block_map[id(src_block)] = clone

        returns: list[tuple[BasicBlock, Value | None]] = []
        for src_block in callee_blocks:
            clone = block_map[id(src_block)]
            for instr in src_block.instructions:
                if instr.opcode is Opcode.RET:
                    ret_val = instr.operands[0] if instr.operands else None
                    returns.append((clone, ret_val))
                    br = Instruction(Opcode.BR, instr.type, [], targets=[cont])
                    clone.append(br)
                    continue
                new_instr = self._clone_instruction(caller, instr, block_map)
                clone.append(new_instr) if not isinstance(
                    new_instr, PhiInstruction
                ) else clone.insert(len(clone.phis()), new_instr)
                value_map[id(instr)] = new_instr

        # 3. Remap operands of the cloned instructions (two-phase so that
        # forward references, e.g. phis of loop headers, resolve).
        for src_block in callee_blocks:
            clone = block_map[id(src_block)]
            for instr in clone.instructions:
                for i, op in enumerate(instr.operands):
                    if id(op) in value_map:
                        instr.operands[i] = value_map[id(op)]
                if isinstance(instr, PhiInstruction):
                    for i, blk in enumerate(instr.incoming_blocks):
                        instr.incoming_blocks[i] = block_map[id(blk)]

        # 4. Wire the call block into the cloned entry; replace the call's
        # value with a merged return value.
        call_block.remove(call)
        entry_clone = block_map[id(callee.entry)]
        call_block.append(Instruction(Opcode.BR, call.type, [], targets=[entry_clone]))

        if call.has_result:
            mapped_returns = [
                (blk, value_map.get(id(v), v)) for blk, v in returns if v is not None
            ]
            if len(mapped_returns) == 1:
                replacement: Value = mapped_returns[0][1]
            else:
                phi = PhiInstruction(call.type, caller.fresh_name("retphi"))
                for blk, val in mapped_returns:
                    phi.add_incoming(val, blk)
                cont.insert(0, phi)
                replacement = phi
            for block in caller.blocks:
                for instr in block.instructions:
                    instr.replace_operand(call, replacement)

    @staticmethod
    def _clone_instruction(
        caller: Function,
        instr: Instruction,
        block_map: dict[int, BasicBlock],
    ) -> Instruction:
        name = caller.fresh_name(instr.name or "i") if instr.has_result else ""
        if isinstance(instr, PhiInstruction):
            clone = PhiInstruction(instr.type, name)
            clone.operands = list(instr.operands)
            clone.incoming_blocks = list(instr.incoming_blocks)
            return clone
        targets = [block_map[id(t)] for t in instr.targets]
        clone = Instruction(
            instr.opcode,
            instr.type,
            list(instr.operands),
            name,
            targets=targets,
            pred=instr.pred,
            callee=instr.callee,
            elem_size=instr.elem_size,
            alloc_count=instr.alloc_count,
            custom_id=instr.custom_id,
        )
        return clone
