"""Dominator-scoped common subexpression elimination.

Walks the dominator tree with a scoped hash table: a pure instruction whose
(opcode, predicate, operand identities) key was already computed in a
dominating position is replaced by the earlier value. Commutative operations
are canonicalised by sorting operand keys.
"""

from __future__ import annotations

from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import ControlFlowInfo
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import COMMUTATIVE_OPS, Opcode, is_pure
from repro.ir.passes.manager import FunctionPass
from repro.ir.values import Constant, Value


def _operand_key(value: Value):
    if isinstance(value, Constant):
        return ("const", str(value.type), repr(value.value))
    return ("val", id(value))


def _instr_key(instr: Instruction):
    op_keys = [_operand_key(o) for o in instr.operands]
    if instr.opcode in COMMUTATIVE_OPS:
        op_keys.sort()
    return (
        instr.opcode.value,
        str(instr.type),
        instr.pred.value if instr.pred is not None else "",
        instr.elem_size,
        tuple(op_keys),
    )


class CommonSubexpressionEliminationPass(FunctionPass):
    name = "cse"

    def run_on_function(self, func: Function) -> bool:
        cfg = ControlFlowInfo(func)
        children: dict[int, list[BasicBlock]] = {id(b): [] for b in cfg.rpo}
        for block in cfg.rpo:
            idom = cfg.immediate_dominator(block)
            if idom is not None:
                children[id(idom)].append(block)

        changed = False
        available: dict = {}

        def walk(block: BasicBlock) -> None:
            nonlocal changed
            added: list = []
            for instr in list(block.instructions):
                # GEP is pure but address identity matters for nothing here;
                # loads are NOT CSE'd (no alias analysis).
                if not is_pure(instr.opcode) or instr.opcode is Opcode.PHI:
                    continue
                key = _instr_key(instr)
                if key in available:
                    _replace_uses(func, instr, available[key])
                    block.remove(instr)
                    changed = True
                else:
                    available[key] = instr
                    added.append(key)
            for child in children.get(id(block), []):
                walk(child)
            for key in added:
                del available[key]

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000))
        try:
            walk(func.entry)
        finally:
            sys.setrecursionlimit(old_limit)
        return changed


def _replace_uses(func: Function, old: Value, new: Value) -> None:
    for block in func.blocks:
        for instr in block.instructions:
            instr.replace_operand(old, new)
