"""Constant folding plus simple algebraic simplification (instcombine-lite).

Folds pure instructions whose operands are all constants, and applies a
small set of identities (x+0, x*1, x*0, x-x, x&0, x|0, select on constant,
branch on constant is left to simplify-cfg).

Part of the standard pipeline standing in for the LLVM -O passes the
paper's tool flow applies before candidate search (Figure 1).
"""

from __future__ import annotations

import math

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import FCmpPred, ICmpPred, Opcode
from repro.ir.passes.manager import FunctionPass
from repro.ir.types import Type, to_unsigned, wrap_int
from repro.ir.values import Constant, Value


class ConstantFoldError(ArithmeticError):
    """Raised for fold attempts that would trap at runtime (e.g. div by 0)."""


def fold_binary(op: Opcode, ty: Type, a, b):
    """Fold a binary op on Python scalar values; returns the raw result."""
    if op is Opcode.ADD:
        return wrap_int(a + b, ty)
    if op is Opcode.SUB:
        return wrap_int(a - b, ty)
    if op is Opcode.MUL:
        return wrap_int(a * b, ty)
    if op is Opcode.SDIV:
        if b == 0:
            raise ConstantFoldError("sdiv by zero")
        return wrap_int(int(a / b) if b != 0 else 0, ty)
    if op is Opcode.UDIV:
        if b == 0:
            raise ConstantFoldError("udiv by zero")
        return wrap_int(to_unsigned(a, ty) // to_unsigned(b, ty), ty)
    if op is Opcode.SREM:
        if b == 0:
            raise ConstantFoldError("srem by zero")
        return wrap_int(int(math.fmod(a, b)), ty)
    if op is Opcode.UREM:
        if b == 0:
            raise ConstantFoldError("urem by zero")
        return wrap_int(to_unsigned(a, ty) % to_unsigned(b, ty), ty)
    if op is Opcode.AND:
        return wrap_int(a & b, ty)
    if op is Opcode.OR:
        return wrap_int(a | b, ty)
    if op is Opcode.XOR:
        return wrap_int(a ^ b, ty)
    if op is Opcode.SHL:
        return wrap_int(a << (b % ty.bits), ty)
    if op is Opcode.LSHR:
        return wrap_int(to_unsigned(a, ty) >> (b % ty.bits), ty)
    if op is Opcode.ASHR:
        return wrap_int(a >> (b % ty.bits), ty)
    if op is Opcode.FADD:
        return a + b
    if op is Opcode.FSUB:
        return a - b
    if op is Opcode.FMUL:
        return a * b
    if op is Opcode.FDIV:
        if b == 0.0:
            return math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
        return a / b
    if op is Opcode.FREM:
        # C99 fmod: fmod(x, 0) and fmod(+-inf, y) are NaN; math.fmod
        # raises a domain error on those instead.
        if b == 0.0 or math.isinf(a):
            return math.nan
        return math.fmod(a, b)
    raise ValueError(f"not a foldable binary op: {op}")


def fold_icmp(pred: ICmpPred, ty: Type, a: int, b: int) -> int:
    ua, ub = to_unsigned(a, ty), to_unsigned(b, ty)
    table = {
        ICmpPred.EQ: a == b,
        ICmpPred.NE: a != b,
        ICmpPred.SLT: a < b,
        ICmpPred.SLE: a <= b,
        ICmpPred.SGT: a > b,
        ICmpPred.SGE: a >= b,
        ICmpPred.ULT: ua < ub,
        ICmpPred.ULE: ua <= ub,
        ICmpPred.UGT: ua > ub,
        ICmpPred.UGE: ua >= ub,
    }
    return int(table[pred])


def fold_fcmp(pred: FCmpPred, a: float, b: float) -> int:
    if math.isnan(a) or math.isnan(b):
        return 0  # ordered predicates are false on NaN
    table = {
        FCmpPred.OEQ: a == b,
        FCmpPred.ONE: a != b,
        FCmpPred.OLT: a < b,
        FCmpPred.OLE: a <= b,
        FCmpPred.OGT: a > b,
        FCmpPred.OGE: a >= b,
    }
    return int(table[pred])


def fold_cast(op: Opcode, src_ty: Type, dst_ty: Type, value):
    import struct

    if op in (Opcode.ZEXT,):
        return wrap_int(to_unsigned(value, src_ty), dst_ty)
    if op is Opcode.SEXT:
        return wrap_int(value, dst_ty)
    if op is Opcode.TRUNC:
        return wrap_int(value, dst_ty)
    if op is Opcode.FPTOSI:
        if math.isnan(value) or math.isinf(value):
            return 0
        return wrap_int(int(value), dst_ty)
    if op is Opcode.SITOFP:
        return float(value)
    if op is Opcode.FPEXT:
        return float(value)
    if op is Opcode.FPTRUNC:
        return struct.unpack("f", struct.pack("f", value))[0]
    if op is Opcode.BITCAST:
        if src_ty.is_int and dst_ty.is_float:
            fmt = ("q", "d") if src_ty.bits == 64 else ("i", "f")
            return struct.unpack(fmt[1], struct.pack(fmt[0], value))[0]
        if src_ty.is_float and dst_ty.is_int:
            fmt = ("d", "q") if src_ty.bits == 64 else ("f", "i")
            return wrap_int(
                struct.unpack(fmt[1], struct.pack(fmt[0], value))[0], dst_ty
            )
        return value
    raise ValueError(f"not a cast op: {op}")


class ConstantFoldPass(FunctionPass):
    name = "constfold"

    def run_on_function(self, func: Function) -> bool:
        changed = False
        again = True
        while again:
            again = False
            for block in func.blocks:
                for instr in list(block.instructions):
                    replacement = self._simplify(instr)
                    if replacement is not None:
                        self._replace(func, instr, replacement)
                        block.remove(instr)
                        changed = True
                        again = True
        return changed

    # -- simplification rules ------------------------------------------------
    def _simplify(self, instr: Instruction) -> Value | None:
        from repro.ir.opcodes import BINARY_OPS, CAST_OPS

        op = instr.opcode
        ops = instr.operands
        if op in BINARY_OPS:
            lhs, rhs = ops
            if isinstance(lhs, Constant) and isinstance(rhs, Constant):
                try:
                    value = fold_binary(op, instr.type, lhs.value, rhs.value)
                except ConstantFoldError:
                    return None  # keep the trap at runtime
                return Constant(instr.type, value)
            return self._algebraic(instr, lhs, rhs)
        if op is Opcode.ICMP and all(isinstance(o, Constant) for o in ops):
            from repro.ir.types import I1

            return Constant(
                I1, fold_icmp(instr.pred, ops[0].type, ops[0].value, ops[1].value)
            )
        if op is Opcode.FCMP and all(isinstance(o, Constant) for o in ops):
            from repro.ir.types import I1

            return Constant(I1, fold_fcmp(instr.pred, ops[0].value, ops[1].value))
        if op in CAST_OPS and isinstance(ops[0], Constant):
            return Constant(
                instr.type, fold_cast(op, ops[0].type, instr.type, ops[0].value)
            )
        if op is Opcode.FNEG and isinstance(ops[0], Constant):
            return Constant(instr.type, -ops[0].value)
        if op is Opcode.SELECT and isinstance(ops[0], Constant):
            return ops[1] if ops[0].value else ops[2]
        if op is Opcode.SELECT and ops[1] is ops[2]:
            return ops[1]
        return None

    @staticmethod
    def _algebraic(instr: Instruction, lhs: Value, rhs: Value) -> Value | None:
        op = instr.opcode
        ty = instr.type

        def is_const(v: Value, value) -> bool:
            return isinstance(v, Constant) and v.value == value

        if op is Opcode.ADD:
            if is_const(rhs, 0):
                return lhs
            if is_const(lhs, 0):
                return rhs
        elif op is Opcode.SUB:
            if is_const(rhs, 0):
                return lhs
            if lhs is rhs:
                return Constant(ty, 0)
        elif op is Opcode.MUL:
            if is_const(rhs, 1):
                return lhs
            if is_const(lhs, 1):
                return rhs
            if is_const(rhs, 0) or is_const(lhs, 0):
                return Constant(ty, 0)
        elif op in (Opcode.SDIV, Opcode.UDIV):
            if is_const(rhs, 1):
                return lhs
        elif op is Opcode.AND:
            if is_const(rhs, 0) or is_const(lhs, 0):
                return Constant(ty, 0)
            if lhs is rhs:
                return lhs
            if is_const(rhs, -1):
                return lhs
        elif op is Opcode.OR:
            if is_const(rhs, 0):
                return lhs
            if is_const(lhs, 0):
                return rhs
            if lhs is rhs:
                return lhs
        elif op is Opcode.XOR:
            if is_const(rhs, 0):
                return lhs
            if lhs is rhs:
                return Constant(ty, 0)
        elif op in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
            if is_const(rhs, 0):
                return lhs
        elif op is Opcode.FMUL:
            if is_const(rhs, 1.0):
                return lhs
            if is_const(lhs, 1.0):
                return rhs
        elif op in (Opcode.FADD, Opcode.FSUB):
            # 0.0 identities are unsafe under signed zero only for FSUB(0,x);
            # x+0.0 and x-0.0 preserve value for all finite x and NaN.
            if is_const(rhs, 0.0):
                return lhs
        return None

    @staticmethod
    def _replace(func: Function, old: Instruction, new: Value) -> None:
        for block in func.blocks:
            for instr in block.instructions:
                instr.replace_operand(old, new)
