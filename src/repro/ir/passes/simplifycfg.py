"""CFG simplification.

Three transformations iterated to fixpoint:

1. fold ``condbr`` on a constant condition into ``br``;
2. delete unreachable blocks (updating phis in their successors);
3. merge a block into its unique predecessor when that predecessor has a
   single successor and the block has no phis.

Keeps the CFGs — and hence the per-block profiles behind the paper's
Section IV-C coverage analysis — free of trivial blocks.
"""

from __future__ import annotations

from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import reverse_postorder
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.passes.manager import FunctionPass
from repro.ir.values import Constant


class SimplifyCfgPass(FunctionPass):
    name = "simplifycfg"

    def run_on_function(self, func: Function) -> bool:
        changed = False
        while True:
            did = (
                self._fold_constant_branches(func)
                | self._remove_unreachable(func)
                | self._merge_blocks(func)
            )
            changed |= did
            if not did:
                return changed

    # -- 1: constant branches ----------------------------------------------
    @staticmethod
    def _fold_constant_branches(func: Function) -> bool:
        changed = False
        for block in func.blocks:
            term = block.terminator
            if term is None or term.opcode is not Opcode.CONDBR:
                continue
            cond = term.operands[0]
            if not isinstance(cond, Constant):
                continue
            taken = term.targets[0] if cond.value else term.targets[1]
            not_taken = term.targets[1] if cond.value else term.targets[0]
            block.remove(term)
            new_br = Instruction(Opcode.BR, term.type, [], targets=[taken])
            block.append(new_br)
            if not_taken is not taken:
                for phi in not_taken.phis():
                    try:
                        phi.remove_incoming(block)
                    except KeyError:
                        pass
            changed = True
        return changed

    # -- 2: unreachable blocks -----------------------------------------------
    @staticmethod
    def _remove_unreachable(func: Function) -> bool:
        reachable = {id(b) for b in reverse_postorder(func)}
        dead = [b for b in func.blocks if id(b) not in reachable]
        if not dead:
            return False
        dead_ids = {id(b) for b in dead}
        for block in func.blocks:
            if id(block) in dead_ids:
                continue
            for phi in block.phis():
                for inc_block in list(phi.incoming_blocks):
                    if id(inc_block) in dead_ids:
                        phi.remove_incoming(inc_block)
        for block in dead:
            func.remove_block(block)
        return True

    # -- 3: block merging ----------------------------------------------------
    @staticmethod
    def _merge_blocks(func: Function) -> bool:
        changed = False
        for block in list(func.blocks):
            if block is func.entry:
                continue
            preds = block.predecessors()
            if len(preds) != 1:
                continue
            pred = preds[0]
            if pred is block or len(pred.successors) != 1:
                continue
            if block.phis():
                continue
            # Splice block's instructions after pred's (removed) terminator.
            term = pred.terminator
            assert term is not None
            pred.remove(term)
            for instr in list(block.instructions):
                block.remove(instr)
                pred.append(instr)
            # Phis in block's successors must now name pred as predecessor.
            for succ in pred.successors:
                for phi in succ.phis():
                    for i, inc_block in enumerate(phi.incoming_blocks):
                        if inc_block is block:
                            phi.incoming_blocks[i] = pred
            func.remove_block(block)
            changed = True
        return changed
