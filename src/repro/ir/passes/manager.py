"""Pass manager: sequences passes and (optionally) verifies between them.

The pipeline stands in for the LLVM -O stage of the paper's Figure 1
tool flow; per-pass timings feed the compile span of the trace output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.verifier import verify_module


class ModulePass:
    """Base class for passes that transform a whole module."""

    name = "module-pass"

    def run(self, module: Module) -> bool:
        """Transform *module*; return True if anything changed."""
        raise NotImplementedError


class FunctionPass(ModulePass):
    """Base class for passes applied function-by-function."""

    name = "function-pass"

    def run(self, module: Module) -> bool:
        changed = False
        for func in list(module.defined_functions()):
            changed |= self.run_on_function(func)
        return changed

    def run_on_function(self, func: Function) -> bool:
        raise NotImplementedError


@dataclass
class PassManager:
    """Runs a sequence of passes over a module, recording per-pass timings.

    The recorded wall-clock times feed the "Compilation to Bitcode / real"
    column of Table I (the reproduction measures its own compiler, as the
    paper measured llvm-gcc).
    """

    verify_between: bool = False
    passes: list[ModulePass] = field(default_factory=list)
    timings: list[tuple[str, float]] = field(default_factory=list)

    def add(self, pass_: ModulePass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, module: Module) -> bool:
        changed_any = False
        self.timings = []
        for pass_ in self.passes:
            start = time.perf_counter()
            changed = pass_.run(module)
            self.timings.append((pass_.name, time.perf_counter() - start))
            changed_any |= changed
            if self.verify_between:
                try:
                    verify_module(module)
                except Exception as exc:
                    raise RuntimeError(
                        f"IR verification failed after pass {pass_.name!r}: {exc}"
                    ) from exc
        return changed_any

    @property
    def total_time(self) -> float:
        return sum(t for _, t in self.timings)
