"""Optimization passes over the IR.

The frontend's ``-O2``-style pipeline (mirroring what llvm-gcc -O3 did for
the paper) is assembled in :func:`standard_pipeline`. The passes matter for
the reproduction beyond cosmetics: mem2reg is what turns frontend
load/store soup into dataflow that the ISE algorithms can mine, and the
cleanup passes shape the basic-block statistics (size, instruction mix) that
drive the paper's conclusions.
"""

from repro.ir.passes.manager import FunctionPass, ModulePass, PassManager
from repro.ir.passes.mem2reg import Mem2RegPass
from repro.ir.passes.constfold import ConstantFoldPass
from repro.ir.passes.dce import DeadCodeEliminationPass
from repro.ir.passes.cse import CommonSubexpressionEliminationPass
from repro.ir.passes.simplifycfg import SimplifyCfgPass
from repro.ir.passes.inline import InlinePass
from repro.ir.passes.licm import LoopInvariantCodeMotionPass
from repro.ir.passes.utils import replace_all_uses


def standard_pipeline(opt_level: int = 2) -> PassManager:
    """Build the standard optimization pipeline.

    Level 0: verification only. Level 1: mem2reg + cleanup. Level 2 (default,
    what the experiments use): adds inlining, CSE and LICM with a second
    cleanup round.
    """
    pm = PassManager(verify_between=True)
    if opt_level >= 1:
        pm.add(Mem2RegPass())
        pm.add(ConstantFoldPass())
        pm.add(SimplifyCfgPass())
        pm.add(DeadCodeEliminationPass())
    if opt_level >= 2:
        pm.add(InlinePass())
        pm.add(Mem2RegPass())
        pm.add(ConstantFoldPass())
        pm.add(CommonSubexpressionEliminationPass())
        pm.add(LoopInvariantCodeMotionPass())
        pm.add(ConstantFoldPass())
        pm.add(CommonSubexpressionEliminationPass())
        pm.add(DeadCodeEliminationPass())
        pm.add(SimplifyCfgPass())
        pm.add(DeadCodeEliminationPass())
    return pm


__all__ = [
    "FunctionPass",
    "ModulePass",
    "PassManager",
    "Mem2RegPass",
    "ConstantFoldPass",
    "DeadCodeEliminationPass",
    "CommonSubexpressionEliminationPass",
    "SimplifyCfgPass",
    "InlinePass",
    "LoopInvariantCodeMotionPass",
    "replace_all_uses",
    "standard_pipeline",
]
