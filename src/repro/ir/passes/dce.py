"""Dead code elimination: remove pure instructions with no uses.

Runs in the standard pipeline standing in for LLVM's -O passes in the
paper's Figure 1 tool flow.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode, is_pure
from repro.ir.passes.manager import FunctionPass
from repro.ir.passes.utils import build_use_counts


class DeadCodeEliminationPass(FunctionPass):
    name = "dce"

    def run_on_function(self, func: Function) -> bool:
        changed = False
        while True:
            use_counts = build_use_counts(func)
            dead: list[Instruction] = []
            for block in func.blocks:
                for instr in block.instructions:
                    if use_counts.get(id(instr), 0) > 0:
                        continue
                    if is_pure(instr.opcode) or instr.opcode in (
                        Opcode.PHI,
                        Opcode.ALLOCA,
                    ):
                        dead.append(instr)
            if not dead:
                return changed
            for instr in dead:
                if instr.parent is not None:
                    instr.parent.remove(instr)
            changed = True
