"""IR verifier.

Checks the structural invariants the rest of the system relies on:

- every block has exactly one terminator, at the end;
- phi nodes appear only at block starts and list each CFG predecessor
  exactly once;
- every instruction operand is defined (constant, argument, global, or an
  instruction whose definition dominates the use — the SSA property);
- operand and result types are consistent per opcode;
- branch targets belong to the same function.

The frontend runs the verifier after codegen and after every optimization
pass (in pedantic mode), so a verifier failure in the wild always points at
a compiler bug rather than silently corrupting downstream analyses.

Run between passes so the bitcode handed to the paper's profiling and
candidate-search phases (Figures 1 and 2) is always well-formed.
"""

from __future__ import annotations

from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import ControlFlowInfo
from repro.ir.function import Function
from repro.ir.instructions import Instruction, PhiInstruction
from repro.ir.module import Module
from repro.ir.opcodes import (
    BINARY_OPS,
    FLOAT_BINARY_OPS,
    INT_BINARY_OPS,
    Opcode,
)
from repro.ir.types import I1, VOID
from repro.ir.values import Argument, Constant, GlobalVariable, UndefValue, Value


class VerificationError(Exception):
    """Raised when IR violates a structural invariant."""


def _fail(func: Function, block: BasicBlock | None, msg: str) -> None:
    where = f"{func.name}"
    if block is not None:
        where += f"/{block.name}"
    raise VerificationError(f"[{where}] {msg}")


def verify_module(module: Module) -> None:
    for func in module.defined_functions():
        verify_function(func)


def verify_function(func: Function) -> None:
    if not func.blocks:
        return  # declaration
    _verify_block_structure(func)
    cfg = ControlFlowInfo(func)
    _verify_phis(func, cfg)
    _verify_ssa_dominance(func, cfg)
    _verify_types(func)


def _verify_block_structure(func: Function) -> None:
    names = set()
    for block in func.blocks:
        if block.name in names:
            _fail(func, block, "duplicate block name")
        names.add(block.name)
        if not block.instructions:
            _fail(func, block, "empty basic block")
        for instr in block.instructions[:-1]:
            if instr.is_terminator:
                _fail(func, block, f"terminator {instr.opcode} not at block end")
        last = block.instructions[-1]
        if not last.is_terminator:
            _fail(func, block, f"block does not end in a terminator (ends in {last.opcode})")
        seen_non_phi = False
        for instr in block.instructions:
            if instr.parent is not block:
                _fail(func, block, f"instruction {instr.opcode} has wrong parent link")
            if isinstance(instr, PhiInstruction):
                if seen_non_phi:
                    _fail(func, block, "phi after non-phi instruction")
            else:
                seen_non_phi = True
            for target in instr.targets:
                if target.parent is not func:
                    _fail(
                        func,
                        block,
                        f"branch target {target.name} not in function",
                    )
        if last.opcode is Opcode.RET:
            if func.return_type.is_void:
                if last.operands:
                    _fail(func, block, "ret with value in void function")
            else:
                if not last.operands:
                    _fail(func, block, "ret without value in non-void function")
                if last.operands[0].type != func.return_type:
                    _fail(
                        func,
                        block,
                        f"ret type {last.operands[0].type} != {func.return_type}",
                    )


def _verify_phis(func: Function, cfg: ControlFlowInfo) -> None:
    for block in func.blocks:
        if not cfg.is_reachable(block):
            continue
        # Structural predecessors: unreachable blocks that branch here still
        # count (LLVM semantics) even though dominance analysis skips them.
        preds = block.predecessors()
        pred_ids = {id(p) for p in preds}
        for phi in block.phis():
            seen: set[int] = set()
            for _, incoming_block in phi.incoming:
                if id(incoming_block) in seen:
                    _fail(
                        func,
                        block,
                        f"phi %{phi.name} lists predecessor {incoming_block.name} twice",
                    )
                seen.add(id(incoming_block))
            missing = pred_ids - seen
            if missing:
                names = [p.name for p in preds if id(p) in missing]
                _fail(func, block, f"phi %{phi.name} missing incoming for {names}")
            extra = seen - pred_ids
            if extra:
                _fail(func, block, f"phi %{phi.name} lists non-predecessor block")


def _def_block(value: Value) -> BasicBlock | None:
    if isinstance(value, Instruction):
        return value.parent
    return None


def _verify_ssa_dominance(func: Function, cfg: ControlFlowInfo) -> None:
    defined_here = {id(a) for a in func.args}
    instr_blocks: dict[int, BasicBlock] = {}
    for block in func.blocks:
        for instr in block.instructions:
            instr_blocks[id(instr)] = block

    for block in func.blocks:
        if not cfg.is_reachable(block):
            continue
        position: dict[int, int] = {
            id(instr): i for i, instr in enumerate(block.instructions)
        }
        for i, instr in enumerate(block.instructions):
            if isinstance(instr, PhiInstruction):
                # Each incoming value must dominate the *end* of its edge block.
                for value, inc_block in instr.incoming:
                    _check_operand_defined(func, block, instr, value, instr_blocks)
                    dblock = _def_block(value)
                    if dblock is not None and cfg.is_reachable(inc_block):
                        if not cfg.dominates(dblock, inc_block):
                            _fail(
                                func,
                                block,
                                f"phi %{instr.name}: incoming %{value.name} does not "
                                f"dominate edge from {inc_block.name}",
                            )
                continue
            for value in instr.operands:
                _check_operand_defined(func, block, instr, value, instr_blocks)
                dblock = _def_block(value)
                if dblock is None:
                    if isinstance(value, Argument) and id(value) not in defined_here:
                        _fail(
                            func,
                            block,
                            f"operand argument %{value.name} from another function",
                        )
                    continue
                if dblock is block:
                    if position[id(value)] >= i:
                        _fail(
                            func,
                            block,
                            f"use of %{value.name} before its definition",
                        )
                elif cfg.is_reachable(dblock):
                    if not cfg.dominates(dblock, block):
                        _fail(
                            func,
                            block,
                            f"definition of %{value.name} in {dblock.name} does not "
                            f"dominate use in {block.name}",
                        )


def _check_operand_defined(
    func: Function,
    block: BasicBlock,
    instr: Instruction,
    value: Value,
    instr_blocks: dict[int, BasicBlock],
) -> None:
    if isinstance(value, (Constant, GlobalVariable, UndefValue, Argument)):
        return
    if isinstance(value, Instruction):
        if id(value) not in instr_blocks:
            _fail(
                func,
                block,
                f"{instr.opcode} uses instruction %{value.name} not in function",
            )
        return
    _fail(func, block, f"{instr.opcode} has invalid operand {value!r}")


def _verify_types(func: Function) -> None:
    for block in func.blocks:
        for instr in block.instructions:
            op = instr.opcode
            ops = instr.operands
            if op in BINARY_OPS:
                if len(ops) != 2:
                    _fail(func, block, f"{op} expects 2 operands")
                if ops[0].type != ops[1].type or ops[0].type != instr.type:
                    _fail(func, block, f"{op} type mismatch")
                if op in INT_BINARY_OPS and not instr.type.is_int:
                    _fail(func, block, f"{op} on non-integer type {instr.type}")
                if op in FLOAT_BINARY_OPS and not instr.type.is_float:
                    _fail(func, block, f"{op} on non-float type {instr.type}")
            elif op in (Opcode.ICMP, Opcode.FCMP):
                if len(ops) != 2 or instr.type != I1 or instr.pred is None:
                    _fail(func, block, f"malformed {op}")
            elif op is Opcode.SELECT:
                if len(ops) != 3 or ops[0].type != I1 or ops[1].type != ops[2].type:
                    _fail(func, block, "malformed select")
                if instr.type != ops[1].type:
                    _fail(func, block, "select result type mismatch")
            elif op is Opcode.LOAD:
                if len(ops) != 1 or not ops[0].type.is_ptr or instr.type.is_void:
                    _fail(func, block, "malformed load")
            elif op is Opcode.STORE:
                if len(ops) != 2 or not ops[1].type.is_ptr or instr.type != VOID:
                    _fail(func, block, "malformed store")
            elif op is Opcode.GEP:
                if (
                    len(ops) != 2
                    or not ops[0].type.is_ptr
                    or not ops[1].type.is_int
                    or instr.elem_size <= 0
                ):
                    _fail(func, block, "malformed gep")
            elif op is Opcode.CONDBR:
                if len(ops) != 1 or ops[0].type != I1 or len(instr.targets) != 2:
                    _fail(func, block, "malformed condbr")
            elif op is Opcode.BR:
                if ops or len(instr.targets) != 1:
                    _fail(func, block, "malformed br")
            elif op is Opcode.CALL:
                if instr.callee is None:
                    _fail(func, block, "call without callee")
