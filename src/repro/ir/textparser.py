"""Parser for the textual IR format emitted by :mod:`repro.ir.printer`.

Round-trips with the printer (``parse_module(print_module(m))`` rebuilds an
equivalent module), enabling golden tests, IR diffing, and storing bitcode
snapshots as text. Not a general-purpose assembler: it accepts exactly the
printer's output grammar.

The textual form is this reproduction's analogue of the paper's
on-disk bitcode (Figure 1).
"""

from __future__ import annotations

import re

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, PhiInstruction
from repro.ir.module import Module
from repro.ir.opcodes import (
    BINARY_OPS,
    CAST_OPS,
    FCmpPred,
    ICmpPred,
    Opcode,
)
from repro.ir.types import Type, VOID, type_from_name
from repro.ir.values import Constant, UndefValue, Value


class IrParseError(Exception):
    """Raised on malformed IR text."""


_GLOBAL_RE = re.compile(
    r"^@(?P<name>\w+) = global (?P<ty>\w+) x (?P<count>\d+)"
    r"(?: init \[(?P<init>.*)\])?$"
)
_DECLARE_RE = re.compile(r"^declare (?P<ret>\w+) @(?P<name>[\w.]+)\((?P<args>.*)\)$")
_DEFINE_RE = re.compile(r"^define (?P<ret>\w+) @(?P<name>[\w.]+)\((?P<args>.*)\) \{$")
_BLOCK_RE = re.compile(r"^(?P<name>[\w.]+):$")
_VALUE_RE = re.compile(r"^(?P<ty>\w+) (?P<ref>%[\w.]+|@[\w.]+|undef|-?[\w.+-]+)$")


class _FunctionBodyParser:
    """Parses one function body with forward references resolved lazily."""

    def __init__(self, module: Module, func: Function):
        self.module = module
        self.func = func
        self.values: dict[str, Value] = {a.name: a for a in func.args}
        self.blocks: dict[str, BasicBlock] = {}
        # (instr, operand_index, value_name) fixups for forward refs
        self.fixups: list[tuple[Instruction, int, str]] = []
        self.phi_fixups: list[tuple[PhiInstruction, list[tuple[str, str, str]]]] = []
        self.target_fixups: list[tuple[Instruction, list[str]]] = []

    def block(self, name: str) -> BasicBlock:
        if name not in self.blocks:
            self.blocks[name] = self.func.add_block(name)
        return self.blocks[name]

    # -- value parsing ---------------------------------------------------------
    def parse_typed_value(self, text: str, instr: Instruction, slot: int) -> Value | None:
        """Parse ``<type> <ref>``; returns the value or registers a fixup."""
        match = _VALUE_RE.match(text.strip())
        if not match:
            raise IrParseError(f"bad operand {text!r}")
        ty = type_from_name(match.group("ty"))
        ref = match.group("ref")
        return self._resolve(ty, ref, instr, slot)

    def _resolve(self, ty: Type, ref: str, instr: Instruction | None, slot: int):
        if ref == "undef":
            return UndefValue(ty)
        if ref.startswith("@"):
            gv = self.module.globals.get(ref[1:])
            if gv is None:
                raise IrParseError(f"unknown global {ref}")
            return gv
        if ref.startswith("%"):
            name = ref[1:]
            value = self.values.get(name)
            if value is None:
                if instr is None:
                    raise IrParseError(f"unresolved value {ref}")
                self.fixups.append((instr, slot, name))
                return None
            return value
        # constant literal
        if ty.is_float:
            return Constant(ty, float(ref))
        return Constant(ty, int(ref, 0))

    def finalize(self) -> None:
        for instr, slot, name in self.fixups:
            value = self.values.get(name)
            if value is None:
                raise IrParseError(f"undefined value %{name}")
            instr.operands[slot] = value
        for instr, targets in self.target_fixups:
            instr.targets = [self.block(t) for t in targets]
        for phi, incoming in self.phi_fixups:
            for ty_name, ref, block_name in incoming:
                ty = type_from_name(ty_name)
                value = self._resolve(ty, ref, None, -1)
                phi.add_incoming(value, self.block(block_name))


def _split_operands(text: str) -> list[str]:
    """Split a comma-separated operand list (no nesting in this grammar)."""
    return [p.strip() for p in text.split(",")] if text.strip() else []


def parse_module(source: str) -> Module:
    """Parse printer-format IR text into a fresh module."""
    lines = [ln.rstrip() for ln in source.splitlines()]
    module: Module | None = None
    index = 0

    # First pass: module header, globals and function signatures, so calls
    # and global references resolve regardless of order.
    pending_functions: list[tuple[int, str]] = []
    for i, line in enumerate(lines):
        text = line.strip()
        if text.startswith("; module"):
            module = Module(text[len("; module") :].strip())
        elif text.startswith("@") and module is not None:
            match = _GLOBAL_RE.match(text)
            if not match:
                raise IrParseError(f"bad global: {text}")
            init = None
            if match.group("init") is not None:
                raw = match.group("init").strip()
                init = (
                    [eval(v) for v in raw.split(",")] if raw else []
                )  # noqa: S307 - literals from our own printer
            module.add_global(
                match.group("name"),
                type_from_name(match.group("ty")),
                int(match.group("count")),
                init,
            )
        elif text.startswith("declare ") and module is not None:
            match = _DECLARE_RE.match(text)
            if not match:
                raise IrParseError(f"bad declare: {text}")
            args = [
                ("", type_from_name(a.strip()))
                for a in match.group("args").split(",")
                if a.strip()
            ]
            module.declare_function(
                match.group("name"), type_from_name(match.group("ret")), args
            )
        elif text.startswith("define ") and module is not None:
            match = _DEFINE_RE.match(text)
            if not match:
                raise IrParseError(f"bad define: {text}")
            arg_specs = []
            for piece in _split_operands(match.group("args")):
                vm = _VALUE_RE.match(piece)
                if not vm or not vm.group("ref").startswith("%"):
                    raise IrParseError(f"bad argument spec {piece!r}")
                arg_specs.append(
                    (vm.group("ref")[1:], type_from_name(vm.group("ty")))
                )
            module.declare_function(
                match.group("name"), type_from_name(match.group("ret")), arg_specs
            )
            pending_functions.append((i, match.group("name")))
    if module is None:
        raise IrParseError("missing '; module' header")

    # Second pass: function bodies.
    for start, fname in pending_functions:
        func = module.function(fname)
        parser = _FunctionBodyParser(module, func)
        i = start + 1
        current: BasicBlock | None = None
        while i < len(lines):
            text = lines[i].strip()
            i += 1
            if text == "}":
                break
            if not text:
                continue
            block_match = _BLOCK_RE.match(text)
            if block_match and not text.startswith("%"):
                current = parser.block(block_match.group("name"))
                continue
            if current is None:
                raise IrParseError(f"instruction outside block: {text}")
            _parse_instruction(text, module, parser, current)
        parser.finalize()
    return module


def _parse_instruction(
    text: str, module: Module, parser: _FunctionBodyParser, block: BasicBlock
) -> None:
    name = ""
    rest = text
    if text.startswith("%"):
        name, _, rest = text.partition(" = ")
        name = name[1:]
        if not rest:
            raise IrParseError(f"bad instruction: {text}")

    op_word, _, tail = rest.partition(" ")

    def register(instr: Instruction) -> Instruction:
        block.append(instr)
        if name:
            instr.name = name
            parser.values[name] = instr
        return instr

    # -- control flow ---------------------------------------------------------
    if op_word == "br":
        instr = Instruction(Opcode.BR, VOID, [])
        parser.target_fixups.append((instr, [tail.strip()]))
        register(instr)
        return
    if op_word == "condbr":
        cond_text, t_true, t_false = _split_operands(tail)
        instr = Instruction(Opcode.CONDBR, VOID, [None])
        value = parser.parse_typed_value(cond_text, instr, 0)
        if value is not None:
            instr.operands[0] = value
        parser.target_fixups.append((instr, [t_true, t_false]))
        register(instr)
        return
    if op_word == "ret":
        if tail.strip() == "void":
            register(Instruction(Opcode.RET, VOID, []))
            return
        instr = Instruction(Opcode.RET, VOID, [None])
        value = parser.parse_typed_value(tail, instr, 0)
        if value is not None:
            instr.operands[0] = value
        register(instr)
        return

    # -- phi ---------------------------------------------------------------
    if op_word == "phi":
        ty_name, _, incoming_text = tail.partition(" ")
        phi = PhiInstruction(type_from_name(ty_name), name)
        incoming = []
        for piece in re.findall(r"\[([^\]]*)\]", incoming_text):
            val_text, _, blk = piece.rpartition(",")
            vm = _VALUE_RE.match(val_text.strip())
            if not vm:
                raise IrParseError(f"bad phi incoming {piece!r}")
            incoming.append((vm.group("ty"), vm.group("ref"), blk.strip()))
        parser.phi_fixups.append((phi, incoming))
        block.insert(len(block.phis()), phi)
        parser.values[name] = phi
        return

    # -- calls ---------------------------------------------------------------
    if op_word == "call":
        match = re.match(r"^(?:(\w+) )?@([\w.]+)\((.*)\)$", tail)
        if not match:
            raise IrParseError(f"bad call: {text}")
        ret_name, callee_name, args_text = match.groups()
        ret_ty = type_from_name(ret_name) if ret_name else VOID
        callee = module.functions.get(callee_name)
        target = callee if callee is not None else callee_name
        arg_texts = _split_operands(args_text)
        instr = Instruction(
            Opcode.CALL, ret_ty, [None] * len(arg_texts), callee=target
        )
        for slot, piece in enumerate(arg_texts):
            value = parser.parse_typed_value(piece, instr, slot)
            if value is not None:
                instr.operands[slot] = value
        register(instr)
        return

    if op_word == "custom":
        match = re.match(r"^(\w+) #(\d+)\((.*)\)$", tail)
        if not match:
            raise IrParseError(f"bad custom: {text}")
        result_ty = type_from_name(match.group(1))
        custom_id = int(match.group(2))
        arg_texts = _split_operands(match.group(3))
        instr = Instruction(
            Opcode.CUSTOM, result_ty, [None] * len(arg_texts), custom_id=custom_id
        )
        for slot, piece in enumerate(arg_texts):
            value = parser.parse_typed_value(piece, instr, slot)
            if value is not None:
                instr.operands[slot] = value
        register(instr)
        return

    # -- memory ------------------------------------------------------------
    if op_word == "alloca":
        match = re.match(r"^(\d+) x (\d+)$", tail)
        if not match:
            raise IrParseError(f"bad alloca: {text}")
        from repro.ir.types import PTR

        register(
            Instruction(
                Opcode.ALLOCA,
                PTR,
                [],
                elem_size=int(match.group(1)),
                alloc_count=int(match.group(2)),
            )
        )
        return
    if op_word == "load":
        ty_name, _, ptr_text = tail.partition(",")
        instr = Instruction(Opcode.LOAD, type_from_name(ty_name.strip()), [None])
        value = parser.parse_typed_value(ptr_text, instr, 0)
        if value is not None:
            instr.operands[0] = value
        register(instr)
        return
    if op_word == "store":
        val_text, ptr_text = _split_operands(tail)
        instr = Instruction(Opcode.STORE, VOID, [None, None])
        for slot, piece in enumerate((val_text, ptr_text)):
            value = parser.parse_typed_value(piece, instr, slot)
            if value is not None:
                instr.operands[slot] = value
        register(instr)
        return
    if op_word == "gep":
        pieces = _split_operands(tail)
        if len(pieces) != 3 or not pieces[2].startswith("elem_size="):
            raise IrParseError(f"bad gep: {text}")
        from repro.ir.types import PTR

        instr = Instruction(
            Opcode.GEP,
            PTR,
            [None, None],
            elem_size=int(pieces[2].split("=")[1]),
        )
        for slot, piece in enumerate(pieces[:2]):
            value = parser.parse_typed_value(piece, instr, slot)
            if value is not None:
                instr.operands[slot] = value
        register(instr)
        return

    # -- comparisons ---------------------------------------------------------
    if op_word in ("icmp", "fcmp"):
        pred_name, _, operands_text = tail.partition(" ")
        pred = (
            ICmpPred(pred_name) if op_word == "icmp" else FCmpPred(pred_name)
        )
        from repro.ir.types import I1

        pieces = _split_operands(operands_text)
        instr = Instruction(
            Opcode(op_word), I1, [None] * len(pieces), pred=pred
        )
        for slot, piece in enumerate(pieces):
            value = parser.parse_typed_value(piece, instr, slot)
            if value is not None:
                instr.operands[slot] = value
        register(instr)
        return

    # -- casts (with " -> type" suffix) ----------------------------------------
    opcode = Opcode(op_word)
    if opcode in CAST_OPS:
        operand_text, _, result_ty_name = tail.partition(" -> ")
        instr = Instruction(
            opcode, type_from_name(result_ty_name.strip()), [None]
        )
        value = parser.parse_typed_value(operand_text, instr, 0)
        if value is not None:
            instr.operands[0] = value
        register(instr)
        return

    # -- generic (binops, select, fneg) ------------------------------------
    pieces = _split_operands(tail)
    instr = Instruction(opcode, VOID, [None] * len(pieces))
    first_ty: Type | None = None
    for slot, piece in enumerate(pieces):
        vm = _VALUE_RE.match(piece)
        if vm:
            ty = type_from_name(vm.group("ty"))
            if first_ty is None:
                first_ty = ty
            if opcode is Opcode.SELECT and slot > 0:
                instr.type = ty
        value = parser.parse_typed_value(piece, instr, slot)
        if value is not None:
            instr.operands[slot] = value
    if opcode in BINARY_OPS or opcode is Opcode.FNEG:
        instr.type = first_ty or VOID
    elif opcode is Opcode.SELECT and instr.type is VOID:
        raise IrParseError(f"cannot infer select type: {text}")
    register(instr)
