"""``python -m repro`` entry point.

Dispatches to :mod:`repro.cli`, which regenerates the paper's Tables I-IV
and drives the observability tooling around them.
"""

import sys

from repro.cli import main

sys.exit(main())
