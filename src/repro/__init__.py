"""repro — Just-in-Time Instruction Set Extension, reproduced in Python.

An executable reproduction of Grad & Plessl, "Just-in-time Instruction Set
Extension — Feasibility and Limitations for an FPGA-based Reconfigurable
ASIP Architecture" (RAW/IPDPS 2011): the complete tool flow from C-like
source through a profiling VM, custom-instruction identification (MAXMISO +
@50pS3L pruning), PivPav-style estimation and VHDL generation, a calibrated
FPGA CAD flow, down to partial bitstreams and break-even analysis on a
Woolcano machine model.

Start with :mod:`repro.experiments` (regenerates the paper's tables),
:mod:`repro.core` (the JIT ASIP specialization process), or the CLI:
``python -m repro --help``. See README.md / DESIGN.md / EXPERIMENTS.md.
"""

__version__ = "1.0.0"

__all__ = [
    "apps",
    "core",
    "experiments",
    "fpga",
    "frontend",
    "ir",
    "ise",
    "pivpav",
    "profiling",
    "util",
    "vm",
    "woolcano",
]
