PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test trace-smoke fidelity tables

# Tier-1 verification: the full test suite.
test:
	$(PYTHON) -m pytest -x -q

# Observability smoke: run one embedded app with tracing + metrics enabled,
# validate the exported trace schema, and replay it as a stage-time table.
trace-smoke:
	$(PYTHON) -m pytest -q -m trace_smoke tests/test_cli.py

# Reproduction fidelity: compare the embedded-suite run (incl. the Table IV
# extrapolation factor) against the paper's published table values and write
# a machine-readable BENCH_fidelity_embedded.json report.
fidelity:
	$(PYTHON) -m repro fidelity --domain embedded --full --out BENCH_fidelity_embedded.json

tables:
	$(PYTHON) -m repro tables all
