PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Worker count for the parallel leg of `make regress` (1 = serial).
JOBS ?= 1

# FUSE=1 adds the superinstruction-fusion phase to `make bench-vm` and
# `make regress-vm` (paired plain/fused runs; exits non-zero if fusion
# bends block counts or the virtual clock).
FUSE ?=
FUSE_FLAG := $(if $(FUSE),--fuse,)

.PHONY: test trace-smoke fidelity tables regress regress-serve regress-vm regress-mix docs-lint bench-parallel bench-vm bench-mix whatif-smoke serve-smoke bench-serve slo-smoke

# Tier-1 verification: the full test suite.
test:
	$(PYTHON) -m pytest -x -q

# Observability smoke: run one embedded app with tracing + metrics enabled,
# validate the exported trace schema, and replay it as a stage-time table.
trace-smoke:
	$(PYTHON) -m pytest -q -m trace_smoke tests/test_cli.py

# Reproduction fidelity: compare the embedded-suite run (incl. the Table IV
# extrapolation factor) against the paper's published table values and write
# a machine-readable BENCH_fidelity_embedded.json report.
fidelity:
	$(PYTHON) -m repro fidelity --domain embedded --full --out BENCH_fidelity_embedded.json

tables:
	$(PYTHON) -m repro tables all

# Regression sentinel self-check: record the embedded suite twice in the
# run ledger, then gate the second run against the first cell-by-cell.
# Two back-to-back runs of an unchanged tree must never regress. With
# JOBS=N the second run is sharded over N workers, gating the parallel
# runner's determinism against the serial baseline (`jobs` is a volatile
# config key, so the two runs are comparable).
regress:
	$(PYTHON) -m repro analyze --domain embedded --ledger
	$(PYTHON) -m repro analyze --domain embedded --ledger --jobs $(JOBS)
	$(PYTHON) -m repro runs list
	$(PYTHON) -m repro regress --baseline latest~1

# Critical-path / what-if smoke: record one fft run in the ledger, analyze
# its critical path (the Table III Bitgen-dominance line must render), then
# replay the Table IV grid from the trace and cross-check it cell-by-cell
# against the analytic model; writes the whatif_grid.json artifact.
whatif-smoke:
	$(PYTHON) -m repro analyze fft --ledger
	$(PYTHON) -m repro critpath latest
	$(PYTHON) -m repro whatif latest --grid --out whatif_grid.json

# Documentation lint: every module docstring names its paper anchor, all
# relative markdown links resolve, README links the architecture tour.
docs-lint:
	$(PYTHON) scripts/docs_lint.py

# Four-phase wall-time benchmark (serial/parallel x cold/warm cache);
# rewrites BENCH_parallel.json, the committed evidence.
bench-parallel:
	$(PYTHON) -m repro bench --domain embedded --out BENCH_parallel.json

# Serve-plane smoke: start a real daemon subprocess, run a mixed-tenant
# request burst, render `repro top`, assert the break-even p99 quantile is
# populated, and check SIGINT drains gracefully (exit 0, run closed).
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

# Serving benchmark: Poisson load (cold + warm phase over one schedule)
# against an embedded daemon; rewrites BENCH_serve.json, the committed
# evidence that the warm p95 break-even sits strictly below cold (exit 1
# otherwise).
bench-serve:
	$(PYTHON) -m repro loadgen --requests 200 --out BENCH_serve.json

# SLO smoke: record two loadgen runs, evaluate the stock error-budget
# objectives (must hold), breach a deliberately impossible break-even
# bound (must page into alerts.jsonl), and write the fleet trend report;
# leaves artifacts/slo_alerts.jsonl + artifacts/trend_report.json for CI
# artifact upload (the directory is gitignored).
slo-smoke:
	$(PYTHON) scripts/slo_smoke.py

# VM interpreter benchmark: calibrate the per-opcode-class dispatch cost,
# then run the embedded suite plain + sampled (virtual clock must stay
# bit-identical); rewrites BENCH_vm.json, the committed dispatch baseline
# the ROADMAP's VM-speedup work is measured against.
bench-vm:
	$(PYTHON) -m repro bench-vm --out BENCH_vm.json $(FUSE_FLAG)

# VM regression leg: record two vmprof runs of one app in the ledger and
# gate the second against the first — opcode/digram/superinsn counts and
# the virtual clock must reproduce exactly (rel 1e-9) while the measured
# dispatch-cost/wall cells stay informational until `--history` noise
# bands promote them (`vm.*` tolerances in repro.obs.regress).
regress-vm:
	$(PYTHON) -m repro vmprof adpcm --ledger $(FUSE_FLAG)
	$(PYTHON) -m repro vmprof adpcm --ledger $(FUSE_FLAG)
	$(PYTHON) -m repro runs list --limit 5
	$(PYTHON) -m repro regress --baseline latest~1 --history 5

# Fleet workload-mix benchmark: sweep eviction policy x slot capacity x
# mix entropy through the slot-contention simulator and rewrite
# BENCH_mix.json — the committed "Table IV for fleets". Exits non-zero
# if break-even-aware eviction does not beat LRU on the contended cell
# or the identical-seed determinism rerun drifts.
bench-mix:
	$(PYTHON) -m repro mix --out BENCH_mix.json

# Mix regression leg: record two identical mix runs in the ledger and
# gate the second against the first — every simulated cell (break-even,
# loads, reloads, evictions, store hits) is virtual-clock deterministic
# and must reproduce bit-identically (rel 1e-9); only the profile/grid
# wall-time cells stay informational (`mix.*` tolerances in
# repro.obs.regress).
regress-mix:
	$(PYTHON) -m repro mix --events 60 --out /dev/null --ledger
	$(PYTHON) -m repro mix --events 60 --out /dev/null --ledger
	$(PYTHON) -m repro runs list --limit 5
	$(PYTHON) -m repro regress --baseline latest~1

# Serve regression leg: record two identical load-generation runs in the
# ledger, then gate the second against the first — the deterministic
# request counts must match exactly while the measured latency quantiles
# stay informational (`serve.*` tolerances in repro.obs.regress).
regress-serve:
	$(PYTHON) -m repro loadgen --requests 60 --rate 100 --out /dev/null --ledger
	$(PYTHON) -m repro loadgen --requests 60 --rate 100 --out /dev/null --ledger
	$(PYTHON) -m repro runs list --limit 5
	$(PYTHON) -m repro regress --baseline latest~1
