PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test trace-smoke tables

# Tier-1 verification: the full test suite.
test:
	$(PYTHON) -m pytest -x -q

# Observability smoke: run one embedded app with tracing + metrics enabled,
# validate the exported trace schema, and replay it as a stage-time table.
trace-smoke:
	$(PYTHON) -m pytest -q -m trace_smoke tests/test_cli.py

tables:
	$(PYTHON) -m repro tables all
