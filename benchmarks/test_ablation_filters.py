"""Ablation A5: the pruning-filter design space (the @{P}pS{N}L family).

Reference [9] studies a family of pruning filters before settling on
@50pS3L for the paper. This ablation sweeps the two filter parameters —
time-share coverage P and block budget N — over the whole suite and reports
the speedup retained vs. identification work done, reproducing the kind of
trade-off study that selected @50pS3L.
"""

import pytest

from conftest import print_report
from repro.ise import CandidateSearch, parse_filter_spec
from repro.util.tables import Table
from repro.woolcano import WoolcanoMachine

FILTER_SPECS = ["@25pS1L", "@50pS3L", "@75pS5L", "@90pS8L"]


def test_filter_family_tradeoff(benchmark, suite):
    machine = WoolcanoMachine()

    def sweep():
        rows = []
        for spec in FILTER_SPECS:
            filt = parse_filter_spec(spec)
            total_blocks = 0
            total_ins = 0
            ratios = []
            retained = []
            for a in suite:
                result = CandidateSearch(pruning=filt).run(
                    a.compiled.module, a.train_profile
                )
                total_blocks += len(result.pruned_blocks)
                total_ins += result.pruned_block_instructions
                ratio = machine.speedup(
                    a.compiled.module, a.train_profile, result.selected
                ).ratio
                ratios.append(ratio)
                full = a.asip_max.ratio
                retained.append(ratio / full if full > 0 else 1.0)
            rows.append(
                (
                    spec,
                    total_blocks,
                    total_ins,
                    sum(ratios) / len(ratios),
                    sum(retained) / len(retained),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        columns=["filter", "blocks", "instrs", "avg ASIP", "speedup retained"],
        title="Ablation A5: pruning-filter family (whole suite)",
    )
    for spec, blocks, ins, avg_ratio, kept in rows:
        table.add_row(
            [spec, blocks, ins, f"{avg_ratio:.2f}", f"{kept * 100:.0f}%"]
        )
    print_report("Ablation A5", table.render())

    # Wider filters analyse more code ...
    blocks_series = [r[1] for r in rows]
    ins_series = [r[2] for r in rows]
    assert blocks_series == sorted(blocks_series)
    assert ins_series == sorted(ins_series)
    # ... and retain at least as much speedup.
    kept_series = [r[4] for r in rows]
    assert all(b >= a - 0.02 for a, b in zip(kept_series, kept_series[1:]))
    # The paper's choice sits at a sweet spot: most of the speedup for a
    # fraction of the code.
    at_paper = next(r for r in rows if r[0] == "@50pS3L")
    assert at_paper[4] > 0.6  # retains the bulk of the achievable speedup
    widest = rows[-1]
    assert at_paper[2] <= widest[2]  # while analysing no more code
