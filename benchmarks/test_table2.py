"""Benchmark + regeneration of Table II (ASIP-SP overheads, break-even).

The benchmarked component is the Candidate Search phase itself — the paper
measures it in milliseconds ("real" column) and concludes it is
insignificant next to hardware generation. We assert exactly that.
"""

import math

import pytest

from conftest import print_report
from repro.experiments.table2 import Table2, row_for
from repro.ise import CandidateSearch


def test_generate_table2(benchmark, suite):
    def build():
        return Table2(rows=[row_for(a) for a in suite])

    table = benchmark(build)
    print_report("Table II (regenerated)", table.render())

    avg_s = table.averages("scientific")
    avg_e = table.averages("embedded")

    # Candidate search stays in the milliseconds range for every app.
    for row in table.rows:
        assert row.search_ms < 1000.0
    # Post-pruning ASIP ratio: embedded clearly ahead of scientific,
    # scientific stuck near 1x (the paper's central negative result).
    assert avg_e["asip_ratio"] > avg_s["asip_ratio"]
    assert avg_s["asip_ratio"] < 2.2
    # Hardware generation overhead is minutes-to-hours and scales with the
    # number of candidates.
    for row in table.rows:
        if row.candidates:
            assert row.sum_s > 170 * row.candidates  # >= constant cost each
    # Break-even: embedded in minutes-to-hours, scientific hours-to-days
    # (or never for pure-integer applications).
    finite_e = [r.break_even_s for r in table.domain_rows("embedded")
                if math.isfinite(r.break_even_s)]
    finite_s = [r.break_even_s for r in table.domain_rows("scientific")
                if math.isfinite(r.break_even_s)]
    assert finite_e and max(finite_e) < 6 * 3600
    assert finite_s and max(finite_s) > 12 * 3600


def test_candidate_search_latency(benchmark, suite_by_name):
    """Wall-clock of the complete candidate search for one embedded app."""
    analysis = suite_by_name["fft"]
    module = analysis.compiled.module
    profile = analysis.train_profile

    def search():
        return CandidateSearch().run(module, profile)

    result = benchmark(search)
    assert result.candidate_count >= 1


def test_pruning_efficiency_positive(suite, benchmark):
    """Pruning efficiency (speedup/time gain) > 1 on average, as in [9]."""

    def effic():
        values = [a.pruning_efficiency for a in suite]
        return sum(values) / len(values)

    avg = benchmark.pedantic(effic, rounds=1, iterations=1)
    assert avg > 1.0
