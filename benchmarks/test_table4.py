"""Benchmark + regeneration of Table IV (cache x faster-CAD extrapolation)."""

import math

import pytest

from conftest import print_report
from repro.experiments.table4 import generate_table4
from repro.util.timefmt import format_hhmmss


def test_generate_table4(benchmark, suite):
    table = benchmark.pedantic(
        lambda: generate_table4(trials=8), rounds=1, iterations=1
    )
    print_report("Table IV (regenerated)", table.render())

    grid = table.grid
    base = grid.at(0, 0)
    assert math.isfinite(base)

    # Monotone decrease along both axes.
    for speedup in grid.cad_speedups:
        col = [grid.at(h, speedup) for h in grid.cache_hit_rates]
        assert col == sorted(col, reverse=True)
    for hit in grid.cache_hit_rates:
        row = [grid.at(hit, s) for s in grid.cad_speedups]
        assert row == sorted(row, reverse=True)

    # The paper's headline: 30% cache hits + 30% faster CAD cuts the
    # average embedded break-even time roughly in half (1.94x).
    combo = grid.at(30, 30)
    improvement = base / combo
    print(
        f"break-even at 0/0: {format_hhmmss(base)}; at 30/30: "
        f"{format_hhmmss(combo)} -> {improvement:.2f}x (paper: 1.94x)"
    )
    assert 1.5 < improvement < 2.6

    # CAD speedup columns scale (roughly) linearly; cache rows do NOT,
    # because break-even depends on block frequencies ("these values do
    # not scale linearly", Section VI-C).
    lin = grid.at(0, 90)
    assert lin == pytest.approx(base * 0.1, rel=0.35)
