"""Benchmark + regeneration of Table III (constant tool-flow overheads).

The benchmarked component is one full CAD implementation of a candidate
through our executable mini-flow (syntax check -> synthesis -> translate ->
map -> place & route -> bitgen). The *virtual* stage times are asserted
against the paper's calibration.
"""

import pytest

from conftest import print_report
from repro.experiments.table3 import generate_table3
from repro.fpga import CadToolFlow


def test_generate_table3(benchmark, suite):
    table = benchmark.pedantic(generate_table3, rounds=1, iterations=1)
    print_report("Table III (regenerated)", table.render())
    print(
        f"Bitgen share of constant overhead: {table.bitgen_share:.1%} "
        f"(paper: ~85%), candidates: {table.samples}"
    )

    # Calibration against the paper's Table III (means within a few %).
    assert table.means["c2v"] == pytest.approx(3.22, rel=0.05)
    assert table.means["syn"] == pytest.approx(4.22, rel=0.05)
    assert table.means["xst"] == pytest.approx(10.60, rel=0.08)
    assert table.means["tra"] == pytest.approx(8.99, rel=0.10)
    assert table.means["bitgen"] == pytest.approx(151.0, rel=0.03)
    assert table.constant_sum == pytest.approx(178.03, rel=0.03)
    # "The Bitgen process accounts for 85% of the total runtime."
    assert 0.80 < table.bitgen_share < 0.90
    # Stage spreads stay tight, as measured (stdev column).
    assert table.stdevs["c2v"] < 0.3
    assert table.stdevs["bitgen"] < 5.0


def test_cad_implementation_wall_clock(benchmark, suite_by_name):
    """Real wall-clock of implementing one candidate end-to-end."""
    analysis = suite_by_name["sor"]
    est = analysis.search_pruned.selected[0]
    flow = CadToolFlow()

    def implement():
        return flow.implement(est.candidate)

    impl = benchmark.pedantic(implement, rounds=3, iterations=1)
    assert impl.bitstream.size_bytes > 0
    assert impl.routed.routable
