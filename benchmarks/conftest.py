"""Shared fixtures for the benchmark harness.

`pytest benchmarks/ --benchmark-only` regenerates every table and figure of
the paper. The full 14-application analysis runs once per session (a few
minutes); individual benchmarks then time the interesting components
(candidate search, CAD stages, table assembly) against the cached analyses
and print the regenerated tables so runs double as experiment reports.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def suite():
    """All 14 application analyses (compiled, profiled, searched, implemented)."""
    from repro.experiments import analyze_suite

    return analyze_suite()


@pytest.fixture(scope="session")
def suite_by_name(suite):
    return {a.name: a for a in suite}


def print_report(title: str, body: str) -> None:
    print()
    print(f"==== {title} " + "=" * max(0, 60 - len(title)))
    print(body)
