"""Ablation A1: the @50pS3L pruning filter on vs. off.

Reproduces the role of reference [9]: pruning must cut identification work
dramatically while keeping most of the achievable speedup (the paper
quotes two orders of magnitude runtime reduction for ~1/4 of the speedup
on full SPEC-sized programs; our scaled-down applications show the same
direction with smaller magnitudes).
"""

import pytest

from conftest import print_report
from repro.ise import CandidateSearch
from repro.ise.pruning import NO_PRUNING, PruningFilter
from repro.util.tables import Table
from repro.woolcano import WoolcanoMachine


def test_pruning_tradeoff_table(benchmark, suite):
    machine = WoolcanoMachine()

    def build():
        rows = []
        for a in suite:
            rows.append(
                (
                    a.name,
                    len(a.search_pruned.pruned_blocks),
                    a.search_pruned.pruned_block_instructions,
                    a.compiled.compilation.instructions,
                    a.asip_max.ratio,
                    a.asip_pruned.ratio,
                    a.pruning_efficiency,
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = Table(
        columns=["App", "blk", "ins", "total ins", "ASIP full", "ASIP pruned", "effic"],
        title="Ablation A1: pruning on vs off",
    )
    for name, blk, ins, total, full, pruned, effic in rows:
        table.add_row(
            [name, blk, ins, total, f"{full:.2f}", f"{pruned:.2f}", f"{effic:.2f}"]
        )
    print_report("Ablation A1", table.render())

    # Pruning reduces the bitcode passed to identification ...
    for name, blk, ins, total, full, pruned, effic in rows:
        assert ins < total
        assert blk <= 3
        # ... and never *increases* the speedup.
        assert pruned <= full + 1e-6
    # On average most of the speedup survives pruning.
    avg_keep = sum(p / f for _, _, _, _, f, p, _ in rows if f > 0) / len(rows)
    assert avg_keep > 0.5


def test_identification_time_reduction(benchmark, suite_by_name):
    """Pruned search must be faster than unpruned search on a large app."""
    analysis = suite_by_name["470.lbm"]
    module = analysis.compiled.module
    profile = analysis.train_profile

    def pruned_search():
        return CandidateSearch(pruning=PruningFilter()).run(module, profile)

    result = benchmark(pruned_search)
    full = CandidateSearch(pruning=NO_PRUNING, min_total_cycles_saved=0.0).run(
        module, profile
    )
    # Pruning reduces the number of blocks analysed.
    executed_blocks = sum(
        1 for p in profile.blocks.values() if p.count > 0
    )
    assert len(result.pruned_blocks) < executed_blocks
