"""Ablation A4: speedup under a finite UDI slot budget.

The APU decodes a limited number of user-defined instruction opcodes; the
paper implicitly assumes all candidates fit. This ablation shows how the
achievable speedup saturates with slot count — and that candidate-rich
applications (470.lbm: 26 candidates) keep gaining where compact embedded
kernels saturate after a handful of slots.
"""

import pytest

from conftest import print_report
from repro.util.tables import Table
from repro.woolcano import WoolcanoMachine

CAPACITIES = [1, 2, 4, 8, 16, 32]
APPS = ["whetstone", "sor", "470.lbm", "188.ammp"]


def test_slot_budget_saturation(benchmark, suite_by_name):
    machine = WoolcanoMachine()

    def sweep():
        results = {}
        for name in APPS:
            a = suite_by_name[name]
            ratios = [
                machine.speedup_with_slots(
                    a.compiled.module,
                    a.train_profile,
                    a.search_full.selected,
                    capacity=c,
                ).ratio
                for c in CAPACITIES
            ]
            results[name] = ratios
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        columns=["app"] + [f"{c} slots" for c in CAPACITIES],
        title="Ablation A4: ASIP ratio vs UDI slot budget",
    )
    for name, ratios in results.items():
        table.add_row([name] + [f"{r:.2f}" for r in ratios])
    print_report("Ablation A4", table.render())

    for name, ratios in results.items():
        # monotone non-decreasing in capacity
        assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:]))
    # Embedded kernels saturate within a few slots.
    whet = results["whetstone"]
    assert whet[3] >= 0.9 * whet[-1]  # 8 slots ~ all slots
    sor = results["sor"]
    assert sor[2] >= 0.99 * sor[-1]  # 4 slots suffice
    # Candidate-rich scientific apps still gain beyond 8 slots — the paper's
    # "implement all candidates" assumption needs a big fabric.
    lbm = results["470.lbm"]
    assert lbm[-1] > lbm[3] + 1e-6
