"""Ablation A2: ISE identification algorithms compared.

MAXMISO (linear, the paper's choice) vs. single-cut enumeration
(exponential state of the art) vs. union-of-MISOs (middle ground) on the
pruned hot blocks of every application.
"""

import time

import pytest

from conftest import print_report
from repro.ise import (
    CandidateSearch,
    MaxMisoIdentifier,
    SingleCutIdentifier,
    UnionMisoIdentifier,
)
from repro.util.tables import Table
from repro.woolcano import WoolcanoMachine

ALGORITHMS = {
    "maxmiso": MaxMisoIdentifier(),
    "unioniso": UnionMisoIdentifier(),
    "singlecut": SingleCutIdentifier(search_budget=20_000),
}


def test_algorithm_comparison(benchmark, suite):
    machine = WoolcanoMachine()

    def compare():
        rows = []
        for name, identifier in ALGORITHMS.items():
            total_time = 0.0
            total_cands = 0
            ratios = []
            for a in suite:
                start = time.perf_counter()
                result = CandidateSearch(identifier=identifier).run(
                    a.compiled.module, a.train_profile
                )
                total_time += time.perf_counter() - start
                total_cands += result.candidate_count
                sp = machine.speedup(
                    a.compiled.module, a.train_profile, result.selected
                )
                ratios.append(sp.ratio)
            rows.append(
                (name, total_time, total_cands, sum(ratios) / len(ratios))
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    table = Table(
        columns=["algorithm", "total time [s]", "candidates", "avg ASIP ratio"],
        title="Ablation A2: identification algorithms (14 apps, @50pS3L)",
    )
    for name, t, cands, ratio in rows:
        table.add_row([name, f"{t:.3f}", cands, f"{ratio:.2f}"])
    print_report("Ablation A2", table.render())

    by_name = {r[0]: r for r in rows}
    # The linear algorithm must be the fastest; the exponential one the
    # slowest (the paper's obstacle 2).
    assert by_name["maxmiso"][1] < by_name["singlecut"][1]
    # All three produce usable speedups.
    for name, t, cands, ratio in rows:
        assert ratio >= 1.0
        assert cands >= 10


def test_maxmiso_throughput(benchmark, suite_by_name):
    """Raw identification throughput on the largest hot block."""
    analysis = suite_by_name["470.lbm"]
    module = analysis.compiled.module
    func_name, block_name = analysis.search_pruned.pruned_blocks[0]
    block = module.function(func_name).block_named(block_name)

    def identify():
        return MaxMisoIdentifier().identify_block(func_name, block)

    candidates = benchmark(identify)
    assert candidates
