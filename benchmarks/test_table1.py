"""Benchmark + regeneration of Table I (application characterization).

Prints the full regenerated table and benchmarks the two measured
components behind it: compiling an application to bitcode (the paper's
"real [s]" column measures llvm-gcc the same way) and executing it on the
profiling VM.
"""

import pytest

from conftest import print_report
from repro.apps import compile_app, get_app
from repro.experiments.table1 import Table1, row_for


def test_generate_table1(benchmark, suite):
    """Assemble Table I from the suite analyses (shape assertions included)."""

    def build():
        return Table1(rows=[row_for(a) for a in suite])

    table = benchmark(build)
    print_report("Table I (regenerated)", table.render())

    avg_s = table.averages("scientific")
    avg_e = table.averages("embedded")
    # Headline shapes from the paper:
    # scientific apps are larger ...
    assert avg_s["loc"] > avg_e["loc"]
    assert avg_s["instructions"] > avg_e["instructions"]
    # ... VM overhead is small for both domains ...
    assert 0.9 < avg_e["vm_ratio"] < 1.15
    assert 0.9 < avg_s["vm_ratio"] < 1.35
    # ... embedded apps promise larger ASIP speedups ...
    assert avg_e["asip_ratio"] > avg_s["asip_ratio"]
    assert avg_s["asip_ratio"] > 1.0
    # ... and kernels obey the Pareto principle (>=90% time, small code).
    assert avg_s["kernel_freq_pct"] >= 90.0
    assert avg_e["kernel_freq_pct"] >= 90.0
    assert avg_s["kernel_size_pct"] < 60.0


def test_compile_to_bitcode_fft(benchmark):
    """The 'Compilation to Bitcode / real' measurement for one app."""
    spec = get_app("fft")
    result = benchmark.pedantic(
        lambda: compile_app(spec), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.compilation.instructions > 100


def test_vm_profiling_run_sor(benchmark):
    """VM execution with block profiling (source of the VM column)."""
    compiled = compile_app(get_app("sor"))

    def run():
        return compiled.run("small")

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.profile.total_block_executions > 0
