"""Ablation A3: sensitivity to the soft-float emulation cost.

DESIGN.md calls out the FPU-less PowerPC-405 as the single most important
constant in the reproduction: FP emulation cost drives which candidates are
profitable. This ablation sweeps `soft_float_scale` and shows the achievable
ASIP ratio of an FP-heavy embedded app growing with emulation cost, while an
integer app stays flat.
"""

import pytest

from conftest import print_report
from repro.ise import CandidateSearch
from repro.ise.pruning import NO_PRUNING
from repro.util.tables import Table
from repro.vm.costmodel import PPC405_COST_MODEL
from repro.woolcano import PowerPC405, WoolcanoMachine

SCALES = [0.5, 1.0, 2.0, 4.0]


def _ratio_for(analysis, scale: float) -> float:
    cm = PPC405_COST_MODEL.with_soft_float_scale(scale)
    machine = WoolcanoMachine(cpu=PowerPC405(cost_model=cm))
    search = CandidateSearch(pruning=NO_PRUNING, cost_model=cm).run(
        analysis.compiled.module, analysis.train_profile
    )
    return machine.speedup(
        analysis.compiled.module, analysis.train_profile, search.selected
    ).ratio


def test_soft_float_sensitivity(benchmark, suite_by_name):
    fp_app = suite_by_name["whetstone"]
    int_app = suite_by_name["429.mcf"]

    def sweep():
        return {
            "whetstone": [_ratio_for(fp_app, s) for s in SCALES],
            "429.mcf": [_ratio_for(int_app, s) for s in SCALES],
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        columns=["app"] + [f"scale {s}" for s in SCALES],
        title="Ablation A3: ASIP ratio vs FP emulation cost",
    )
    for name, ratios in results.items():
        table.add_row([name] + [f"{r:.2f}" for r in ratios])
    print_report("Ablation A3", table.render())

    fp = results["whetstone"]
    intr = results["429.mcf"]
    # FP app: monotonically more attractive as emulation gets slower.
    assert all(b >= a - 1e-6 for a, b in zip(fp, fp[1:]))
    assert fp[-1] > 1.5 * fp[0] or fp[-1] > 6.0
    # Integer app: essentially insensitive.
    assert max(intr) - min(intr) < 0.3
