#!/usr/bin/env python
"""Serve-plane smoke test: daemon lifecycle end to end (CI gate).

Starts a real ``repro serve`` daemon as a subprocess, sends a mixed-tenant
request burst through the socket protocol, renders one ``repro top`` page,
asserts that the stats report a populated p99 break-even quantile (the
serving-time headline of the paper's Table IV cache argument), then
delivers SIGINT and checks the daemon drains gracefully — exit code 0 and
an ``interrupted`` shutdown banner, never a dangling run.

Run from the repository root: ``python scripts/serve_smoke.py``.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: Subprocess environment with the in-tree package importable.
ENV = dict(os.environ)
ENV["PYTHONPATH"] = str(SRC) + (
    os.pathsep + ENV["PYTHONPATH"] if ENV.get("PYTHONPATH") else ""
)
BANNER = re.compile(r"serving on ([\d.]+):(\d+)")

#: (tenant, app) request burst: two tenants, repeated signatures so the
#: second acme/adpcm request must be a cache hit.
REQUESTS = [
    ("acme", "adpcm"),
    ("umbrella", "adpcm"),
    ("acme", "whetstone"),
    ("acme", "adpcm"),
]


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    sys.path.insert(0, str(SRC))
    from repro.serve.protocol import ServeClient

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--workers",
                "2",
                "--store",
                str(Path(tmp) / "store"),
                "--ledger",
                str(Path(tmp) / "ledger"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            cwd=REPO,
            env=ENV,
        )
        try:
            banner = proc.stdout.readline()
            match = BANNER.search(banner)
            if not match:
                proc.kill()
                fail(f"no 'serving on HOST:PORT' banner (got {banner!r})")
            host, port = match.group(1), int(match.group(2))
            print(f"serve-smoke: daemon up at {host}:{port}")

            client = ServeClient(host=host, port=port, timeout=300.0)
            if client.ping().get("status") != "ok":
                fail("ping failed")
            for tenant, app in REQUESTS:
                response = client.specialize(tenant, app)
                if response.get("status") != "ok":
                    fail(f"specialize({tenant}, {app}) -> {response}")
                result = response["result"]
                print(
                    f"serve-smoke: {tenant}/{app}: "
                    f"break-even {result['break_even_seconds']}s, "
                    f"{result['cache_hits']} cache hit(s)"
                )

            stats = client.stats().get("stats") or {}
            completed = (stats.get("requests") or {}).get("completed")
            if completed != len(REQUESTS):
                fail(f"expected {len(REQUESTS)} completed, got {completed}")
            p99 = ((stats.get("latency") or {}).get("break_even") or {}).get(
                "p99"
            )
            if p99 is None or p99 <= 0:
                fail(f"break-even p99 missing from stats (got {p99!r})")
            print(f"serve-smoke: break-even p99 = {p99:.0f}s")
            tenants = stats.get("tenants") or {}
            if set(tenants) != {"acme", "umbrella"}:
                fail(f"expected two tenant namespaces, got {sorted(tenants)}")
            if tenants["acme"]["hits"] < 1:
                fail("repeated acme/adpcm request did not hit the cache")

            # `repro top --once` must render against the live daemon.
            top = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "top",
                    "--port",
                    str(port),
                    "--once",
                ],
                capture_output=True,
                text=True,
                cwd=REPO,
                env=ENV,
                timeout=60,
            )
            if top.returncode != 0 or "break-even" not in top.stdout:
                fail(f"repro top --once failed:\n{top.stdout}{top.stderr}")
            print("serve-smoke: repro top --once rendered")

            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        if proc.returncode != 0:
            fail(f"daemon exited {proc.returncode}:\n{out}")
        if "interrupted" not in out:
            fail(f"SIGINT drain did not report 'interrupted':\n{out}")
        manifests = list(Path(tmp, "ledger").glob("*/manifest.json"))
        if len(manifests) != 1:
            fail(f"expected one closed ledger run, found {len(manifests)}")
        print("serve-smoke: graceful SIGINT drain, ledger run closed")
    print("serve-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
