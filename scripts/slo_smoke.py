#!/usr/bin/env python
"""SLO / error-budget smoke test: the alerting loop end to end (CI gate).

Records two small load-generation runs in a scratch ledger, then drives
the serving-era objective machinery the way an operator would:

1. ``repro slo latest`` under the stock objectives must hold every error
   budget (the paper's Table IV puts the embedded suite's break-even
   within an hour of app runtime, inside the default bound);
2. ``repro slo latest --break-even-threshold 1e-6`` is a deliberately
   impossible objective: it must exit 1, print a BREACHED banner, and
   append a fast-burn *page* alert to the run's ``alerts.jsonl``;
3. ``repro runs trend`` must aggregate the fleet history into a per-cell
   trend report (the CI artifact);
4. ``repro anomaly`` must stay quiet — two comparable runs are far below
   the min-points floor, so nothing may flag.

The breach alerts and the trend report are written under the gitignored
``artifacts/`` directory (``artifacts/slo_alerts.jsonl`` /
``artifacts/trend_report.json``) so CI can upload them without dirtying
the working tree. Run from the repository root:
``python scripts/slo_smoke.py``. No third-party dependencies.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: Gitignored drop zone for the CI artifacts (alerts + trend report).
ARTIFACTS = REPO / "artifacts"

#: Subprocess environment with the in-tree package importable.
ENV = dict(os.environ)
ENV["PYTHONPATH"] = str(SRC) + (
    os.pathsep + ENV["PYTHONPATH"] if ENV.get("PYTHONPATH") else ""
)

#: Every stock objective must show up in the evaluation table.
OBJECTIVES = (
    "break_even_p95",
    "queue_reject_rate",
    "dedup_efficiency",
    "error_rate",
)


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    print(f"slo-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def repro(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env=ENV,
        timeout=600,
    )


def main() -> int:
    sys.path.insert(0, str(SRC))
    from repro.obs.ledger import RunLedger

    with tempfile.TemporaryDirectory(prefix="repro-slo-smoke-") as tmp:
        ledger_dir = str(Path(tmp) / "ledger")

        # Two recorded runs: enough history for a two-point trend series.
        for seed in ("0", "1"):
            result = repro(
                "loadgen",
                "--requests", "20",
                "--rate", "200",
                "--workers", "2",
                "--concurrency", "4",
                "--mix", "adpcm=1",
                "--seed", seed,
                "--out", os.devnull,
                "--store", str(Path(tmp) / f"store-{seed}"),
                "--ledger", ledger_dir,
            )
            if result.returncode != 0:
                fail(f"loadgen (seed {seed}) exited {result.returncode}:\n"
                     f"{result.stdout}{result.stderr}")
        print("slo-smoke: two loadgen runs recorded")

        # 1. Stock objectives hold: every budget intact, exit 0.
        ok = repro("slo", "latest", "--ledger", ledger_dir)
        if ok.returncode != 0:
            fail(f"healthy slo run exited {ok.returncode}:\n"
                 f"{ok.stdout}{ok.stderr}")
        missing = [name for name in OBJECTIVES if name not in ok.stdout]
        if missing:
            fail(f"objectives missing from report: {missing}\n{ok.stdout}")
        print(f"slo-smoke: {len(OBJECTIVES)} objectives evaluated, "
              "budgets intact")

        # 2. A deliberately impossible break-even bound must breach,
        #    page, and leave an alerts.jsonl trail in the run directory.
        breach = repro(
            "slo", "latest", "--ledger", ledger_dir,
            "--break-even-threshold", "1e-6",
        )
        if breach.returncode != 1:
            fail(f"breached slo run exited {breach.returncode} (want 1):\n"
                 f"{breach.stdout}{breach.stderr}")
        if "BREACHED" not in breach.stderr:
            fail(f"no BREACHED banner on stderr:\n{breach.stderr}")
        ledger = RunLedger(ledger_dir)
        alerts_path = ledger.run_dir(ledger.resolve("latest")) / "alerts.jsonl"
        if not alerts_path.is_file():
            fail(f"no alerts.jsonl at {alerts_path}")
        alerts = [
            json.loads(line)
            for line in alerts_path.read_text().splitlines()
            if line.strip()
        ]
        pages = [a for a in alerts if a.get("kind") == "fast_burn"]
        if not pages:
            fail(f"no fast_burn alert recorded (got {alerts})")
        if any(not a.get("run_id") for a in pages):
            fail(f"fast_burn alert missing run id correlation: {pages}")
        ARTIFACTS.mkdir(exist_ok=True)
        shutil.copy(alerts_path, ARTIFACTS / "slo_alerts.jsonl")
        print(f"slo-smoke: breach paged ({len(pages)} fast_burn alert(s) "
              "in alerts.jsonl)")

        # 3. Fleet trend report over the recorded history.
        ARTIFACTS.mkdir(exist_ok=True)
        trend_out = ARTIFACTS / "trend_report.json"
        trend = repro(
            "runs", "trend", "--ledger", ledger_dir,
            "--out", str(trend_out),
        )
        if trend.returncode != 0:
            fail(f"runs trend exited {trend.returncode}:\n"
                 f"{trend.stdout}{trend.stderr}")
        report = json.loads(trend_out.read_text())
        if report.get("schema") != "repro-trend/1" or not report.get("cells"):
            fail(f"malformed trend report: {report.get('schema')!r}, "
                 f"{len(report.get('cells') or {})} cells")
        print(f"slo-smoke: trend report written "
              f"({len(report['cells'])} cells)")

        # 4. Anomaly detection needs more history than two runs: quiet.
        anomaly = repro("anomaly", "--ledger", ledger_dir)
        if anomaly.returncode != 0:
            fail(f"anomaly flagged on two comparable runs:\n"
                 f"{anomaly.stdout}{anomaly.stderr}")
        print("slo-smoke: anomaly detector quiet below min-points")

    print("slo-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
