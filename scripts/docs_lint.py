#!/usr/bin/env python
"""Documentation lint for the reproduction tree.

Four checks, all enforced by ``make docs-lint`` (and the CI lint job):

1. every Python module under ``src/repro/`` carries a non-empty module
   docstring that names its paper anchor — a Section/Table/Figure
   reference (or the word "paper") tying the code back to Grad & Plessl,
   "Just-in-Time Instruction Set Extension" (RAW/IPDPS 2011);
2. every relative markdown link in the top-level docs (README.md,
   DESIGN.md, EXPERIMENTS.md, ROADMAP.md, docs/*.md) resolves to an
   existing file;
3. README.md links the architecture tour (docs/ARCHITECTURE.md) and the
   dispatch architecture guide (docs/VM.md);
4. every ``python -m repro`` subcommand registered in ``src/repro/cli.py``
   appears in the README's command table — a new subcommand without a
   README row fails the lint.

The subcommand check is AST-based (no ``repro`` import: the CI lint job
installs no third-party packages, and ``repro`` pulls numpy/networkx),
so it understands both registration idioms used in ``cli.py``: direct
``sub.add_parser("name", ...)`` calls and the loop form
``for name, ... in (("jit", ...), ...): sub.add_parser(name, ...)``.

Exits non-zero listing every violation.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: What counts as a paper anchor inside a module docstring.
ANCHOR = re.compile(r"Section|Table|Figure|Fig\.|paper", re.IGNORECASE)

#: Markdown files whose relative links must resolve.
DOC_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")

#: Inline markdown links: [text](target). Reference-style links are not
#: used in this tree.
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_docstrings() -> list[str]:
    problems: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(REPO)
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as exc:
            problems.append(f"{rel}: does not parse ({exc})")
            continue
        doc = ast.get_docstring(tree)
        if not doc or not doc.strip():
            problems.append(f"{rel}: missing module docstring")
        elif not ANCHOR.search(doc):
            problems.append(
                f"{rel}: module docstring names no paper anchor "
                "(Section/Table/Figure/paper)"
            )
    return problems


def check_links() -> list[str]:
    problems: list[str] = []
    files = [REPO / name for name in DOC_FILES]
    files += sorted((REPO / "docs").glob("*.md"))
    for doc in files:
        if not doc.is_file():
            continue
        for lineno, line in enumerate(
            doc.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for target in MD_LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = (doc.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{doc.relative_to(REPO)}:{lineno}: broken link "
                        f"-> {target}"
                    )
    return problems


def check_architecture_link() -> list[str]:
    readme = REPO / "README.md"
    if not readme.is_file():
        return ["README.md: missing"]
    text = readme.read_text(encoding="utf-8")
    problems = []
    for target in ("docs/ARCHITECTURE.md", "docs/VM.md"):
        if target not in text:
            problems.append(f"README.md: does not link {target}")
    return problems


def _is_sub_add_parser(node: ast.AST) -> bool:
    """True for a ``sub.add_parser(...)`` call (top-level subcommands only;
    nested subparsers hang off ``runs_sub`` / ``cache_sub``)."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "add_parser"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "sub"
    )


def cli_subcommands() -> set[str]:
    """Every top-level ``python -m repro`` subcommand name in cli.py."""
    tree = ast.parse((SRC / "cli.py").read_text(encoding="utf-8"))
    names: set[str] = set()
    for node in ast.walk(tree):
        # Idiom 1: sub.add_parser("analyze", ...)
        if _is_sub_add_parser(node) and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                names.add(arg.value)
        # Idiom 2: for name, ... in (("jit", ...), ("timeline", ...)):
        #              sub.add_parser(name, ...)
        if isinstance(node, ast.For) and any(
            _is_sub_add_parser(call) for call in ast.walk(node)
        ):
            if isinstance(node.iter, (ast.Tuple, ast.List)):
                for elt in node.iter.elts:
                    if isinstance(elt, (ast.Tuple, ast.List)) and elt.elts:
                        first = elt.elts[0]
                        if isinstance(first, ast.Constant) and isinstance(
                            first.value, str
                        ):
                            names.add(first.value)
    return names


def check_cli_coverage() -> list[str]:
    """Every CLI subcommand must appear in the README command table."""
    readme = REPO / "README.md"
    if not readme.is_file():
        return ["README.md: missing"]
    text = readme.read_text(encoding="utf-8")
    problems: list[str] = []
    for name in sorted(cli_subcommands()):
        # `repro bench` must not be satisfied by the `repro bench-vm` row.
        if not re.search(rf"repro {re.escape(name)}(?![\w-])", text):
            problems.append(
                f"README.md: command table has no row for "
                f"`python -m repro {name}`"
            )
    return problems


def main() -> int:
    problems = (
        check_docstrings()
        + check_links()
        + check_architecture_link()
        + check_cli_coverage()
    )
    for problem in problems:
        print(problem)
    if problems:
        print(f"\ndocs-lint: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("docs-lint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
