#!/usr/bin/env python
"""Documentation lint for the reproduction tree.

Three checks, all enforced by ``make docs-lint`` (and the CI lint job):

1. every Python module under ``src/repro/`` carries a non-empty module
   docstring that names its paper anchor — a Section/Table/Figure
   reference (or the word "paper") tying the code back to Grad & Plessl,
   "Just-in-Time Instruction Set Extension" (RAW/IPDPS 2011);
2. every relative markdown link in the top-level docs (README.md,
   DESIGN.md, EXPERIMENTS.md, ROADMAP.md, docs/*.md) resolves to an
   existing file;
3. README.md links the architecture tour (docs/ARCHITECTURE.md).

Exits non-zero listing every violation.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: What counts as a paper anchor inside a module docstring.
ANCHOR = re.compile(r"Section|Table|Figure|Fig\.|paper", re.IGNORECASE)

#: Markdown files whose relative links must resolve.
DOC_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")

#: Inline markdown links: [text](target). Reference-style links are not
#: used in this tree.
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_docstrings() -> list[str]:
    problems: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(REPO)
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as exc:
            problems.append(f"{rel}: does not parse ({exc})")
            continue
        doc = ast.get_docstring(tree)
        if not doc or not doc.strip():
            problems.append(f"{rel}: missing module docstring")
        elif not ANCHOR.search(doc):
            problems.append(
                f"{rel}: module docstring names no paper anchor "
                "(Section/Table/Figure/paper)"
            )
    return problems


def check_links() -> list[str]:
    problems: list[str] = []
    files = [REPO / name for name in DOC_FILES]
    files += sorted((REPO / "docs").glob("*.md"))
    for doc in files:
        if not doc.is_file():
            continue
        for lineno, line in enumerate(
            doc.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for target in MD_LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = (doc.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{doc.relative_to(REPO)}:{lineno}: broken link "
                        f"-> {target}"
                    )
    return problems


def check_architecture_link() -> list[str]:
    readme = REPO / "README.md"
    if not readme.is_file():
        return ["README.md: missing"]
    if "docs/ARCHITECTURE.md" not in readme.read_text(encoding="utf-8"):
        return ["README.md: does not link docs/ARCHITECTURE.md"]
    return []


def main() -> int:
    problems = check_docstrings() + check_links() + check_architecture_link()
    for problem in problems:
        print(problem)
    if problems:
        print(f"\ndocs-lint: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("docs-lint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
