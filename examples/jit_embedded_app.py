#!/usr/bin/env python3
"""Just-in-time ASIP specialization of a real benchmark application.

Drives the paper's Figure-1 flow end-to-end on the `fft` application from
the embedded suite: VM execution with profiling, concurrent ASIP
specialization, binary patching, and the amortization analysis (when does
the FPGA tool-flow overhead pay for itself?).

Run: python examples/jit_embedded_app.py [app-name]
"""

import sys

from repro.apps import compile_app, get_app
from repro.core import AsipSpecializationProcess, BreakEvenModel, JitIseSystem
from repro.profiling import classify_blocks, compute_kernel
from repro.util.timefmt import format_dhms, format_hms


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "fft"
    spec = get_app(app_name)
    print(f"application: {spec.name} ({spec.domain}) — {spec.description}")

    compiled = compile_app(spec)
    comp = compiled.compilation
    print(
        f"compiled {comp.files} files / {comp.loc} LOC -> "
        f"{comp.basic_blocks} blocks, {comp.instructions} instructions"
    )

    # Profile under every data set (needed for live/dead/const coverage).
    profiles = {ds.name: compiled.run(ds).profile for ds in spec.datasets}
    train = profiles["train"]
    coverage = classify_blocks(compiled.module, list(profiles.values()))
    kernel = compute_kernel(compiled.module, train)
    print(
        f"coverage: {coverage.live_pct:.1f}% live, {coverage.dead_pct:.1f}% dead, "
        f"{coverage.const_pct:.1f}% const; kernel = {kernel.size_pct:.1f}% of the "
        f"code for {kernel.freq_pct:.1f}% of the time"
    )

    # The ASIP specialization process (Figure 2).
    asip_sp = AsipSpecializationProcess()
    report = asip_sp.run(compiled.module, train)
    print(
        f"\ncandidate search: {report.search.search_seconds * 1000:.2f} ms -> "
        f"{report.candidate_count} custom instructions"
    )
    print(
        f"hardware generation: const {format_hms(report.const_seconds)}, "
        f"map {format_hms(report.map_seconds)}, par {format_hms(report.par_seconds)} "
        f"=> {format_hms(report.toolflow_seconds)} total"
    )
    print(
        f"partial reconfiguration: {report.reconfiguration_seconds * 1000:.1f} ms "
        f"for {len(report.reconfigurations)} bitstreams"
    )

    # Break-even analysis (Section V-D).
    analysis = BreakEvenModel().analyze(
        compiled.module,
        train,
        coverage,
        report.search.selected,
        report.total_overhead_seconds,
    )
    if analysis.reachable:
        print(
            f"break-even after {format_dhms(analysis.live_aware_seconds)} "
            f"(d:h:m:s) of continued execution"
        )
    else:
        print("break-even: never (no live-code savings)")

    # End-to-end adaptation check: patched binary must behave identically.
    system = JitIseSystem()
    fresh = compile_app(spec)
    result = system.run_application(
        fresh.compilation,
        dataset_size=spec.train.size,
        dataset_seed=spec.train.seed,
    )
    status = "identical" if result.output_equal else "DIFFERENT (bug!)"
    print(
        f"\nadaptation: ASIP ratio {result.asip_ratio:.2f}x, VM/native "
        f"{result.runtime.ratio:.2f}, patched output {status}"
    )


if __name__ == "__main__":
    main()
