#!/usr/bin/env python3
"""Quickstart: the complete JIT instruction-set-extension flow in one page.

Compiles a small MiniC kernel, profiles it on the VM, searches for custom
instruction candidates, pushes the best one through the FPGA CAD flow, and
reports the resulting speedup and amortization story.

Run: python examples/quickstart.py
"""

from repro.frontend import compile_source
from repro.vm import Interpreter
from repro.ise import CandidateSearch
from repro.fpga import CadToolFlow
from repro.woolcano import WoolcanoMachine
from repro.util.timefmt import format_hms

SOURCE = """
double samples[128];
double weights[128];

int main() {
    int n = dataset_size();
    if (n < 16) n = 16;
    if (n > 128) n = 128;
    srand(dataset_seed());
    for (int i = 0; i < n; i++) {
        samples[i] = 0.001 * (double)(rand() % 2000 - 1000);
        weights[i] = 1.0 / (1.0 + (double)i);
    }
    double acc = 0.0;
    for (int it = 0; it < 40; it++) {
        for (int i = 1; i < n - 1; i++) {
            double v = samples[i] * weights[i]
                     + samples[i - 1] * 0.25
                     + samples[i + 1] * 0.25;
            acc += v * v - samples[i] * 0.125;
        }
    }
    print_f64(acc);
    return 0;
}
"""


def main() -> None:
    # 1. Compile to bitcode (the role of llvm-gcc in the paper).
    comp = compile_source(SOURCE, "quickstart")
    print(
        f"compiled: {comp.loc} LOC -> {comp.basic_blocks} blocks, "
        f"{comp.instructions} IR instructions in {comp.compile_seconds:.3f}s"
    )

    # 2. Execute on the profiling VM.
    interp = Interpreter(comp.module, dataset_size=96, dataset_seed=11)
    run = interp.run("main")
    print(f"program output: {run.output[0]:.6f}  ({run.steps} instructions executed)")

    # 3. Candidate search: pruning -> MAXMISO -> estimation -> selection.
    search = CandidateSearch().run(comp.module, run.profile)
    print(
        f"candidate search: {search.search_seconds * 1000:.2f} ms, "
        f"{search.candidate_count} candidates selected "
        f"(avg {search.avg_candidate_size:.1f} instructions each)"
    )
    for est in search.selected:
        c = est.candidate
        print(
            f"  #{c.index} {c.function}/{c.block}: {c.size} ops, "
            f"{len(c.inputs)} in / {len(c.outputs)} out, "
            f"SW {est.sw_cycles:.0f} cy -> HW {est.hw_cycles:.0f} cy "
            f"({est.local_speedup:.1f}x per execution)"
        )

    # 4. Implement the best candidate in "hardware".
    flow = CadToolFlow()
    impl = flow.implement(search.selected[0].candidate)
    t = impl.times
    print(f"\ngenerated VHDL entity {impl.entity_name} ({impl.vhdl.line_count} lines):")
    print("\n".join(impl.vhdl.source.splitlines()[:12]))
    print("  ...")
    print(
        f"tool flow (virtual): C2V {t.c2v:.1f}s  Syn {t.syn:.1f}s  "
        f"Xst {t.xst:.1f}s  Tra {t.tra:.1f}s  Map {format_hms(t.map)}  "
        f"PAR {format_hms(t.par)}  Bitgen {format_hms(t.bitgen)}  "
        f"=> total {format_hms(t.total)}"
    )
    print(
        f"partial bitstream: {impl.bitstream.size_bytes / 1e6:.2f} MB, "
        f"checksum {impl.bitstream.checksum}"
    )

    # 5. Whole-application speedup on the Woolcano machine.
    machine = WoolcanoMachine()
    speedup = machine.speedup(comp.module, run.profile, search.selected)
    print(f"\nASIP speedup with all candidates: {speedup.ratio:.2f}x")


if __name__ == "__main__":
    main()
