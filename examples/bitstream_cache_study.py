#!/usr/bin/env python3
"""Bitstream caching and faster-CAD extrapolation (paper Section VI).

Reproduces the Table IV methodology for a single application: populate the
partial-bitstream cache at varying hit rates, scale the CAD flow, and chart
how the break-even time responds.

Run: python examples/bitstream_cache_study.py [app-name]
"""

import math
import sys

from repro.apps import compile_app, get_app
from repro.core import AsipSpecializationProcess, BreakEvenModel, CacheSimulation
from repro.core.cache import BitstreamCache
from repro.profiling import classify_blocks
from repro.util.tables import Table
from repro.util.timefmt import format_hhmmss


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "sor"
    spec = get_app(app_name)
    compiled = compile_app(spec)
    profiles = {ds.name: compiled.run(ds).profile for ds in spec.datasets}
    coverage = classify_blocks(compiled.module, list(profiles.values()))
    train = profiles["train"]

    report = AsipSpecializationProcess().run(compiled.module, train)
    print(
        f"{spec.name}: {report.candidate_count} candidates, "
        f"tool flow {report.toolflow_seconds / 60:.1f} min"
    )

    # Demonstrate the cache itself: re-specializing the same application
    # hits on every structurally identical candidate.
    cache = BitstreamCache()
    for ci in report.implementations:
        sig = ci.estimate.candidate.signature
        if cache.get(sig) is None:
            cache.put(sig, ci.implementation.bitstream)
    for ci in report.implementations:
        assert cache.get(ci.estimate.candidate.signature) is not None
    print(
        f"cache after one specialization: {len(cache)} unique bitstreams, "
        f"hit rate on re-run {cache.hit_rate:.0%}"
    )

    # Table IV protocol for this one application.
    sim = CacheSimulation()
    model = BreakEvenModel()
    table = Table(
        columns=["Cache hit [%]", "CAD +0%", "CAD +30%", "CAD +60%", "CAD +90%"],
        title=f"Break-even time for {spec.name} [h:m:s]",
    )
    for hit in range(0, 100, 10):
        cells = [str(hit)]
        for speedup in (0, 30, 60, 90):
            toolflow = sim.average_effective_seconds(report, hit, trials=16)
            overhead = (
                report.search.search_seconds
                + toolflow * (1.0 - speedup / 100.0)
                + report.reconfiguration_seconds
            )
            analysis = model.analyze(
                compiled.module, train, coverage, report.search.selected, overhead
            )
            value = analysis.live_aware_seconds
            cells.append(format_hhmmss(value) if math.isfinite(value) else "never")
        table.add_row(cells)
    print()
    print(table.render())


if __name__ == "__main__":
    main()
