#!/usr/bin/env python3
"""Bring your own application: write MiniC, compare ISE algorithms.

Shows the library as a downstream user would adopt it: define a custom
application with its own data sets, profile it, and compare the three
identification algorithms (linear MAXMISO, union-of-MISOs, exponential
single-cut enumeration) on its hot code.

Run: python examples/custom_kernel.py
"""

import time

from repro.frontend import compile_source
from repro.ise import (
    CandidateSearch,
    MaxMisoIdentifier,
    SingleCutIdentifier,
    UnionMisoIdentifier,
)
from repro.vm import Interpreter
from repro.woolcano import WoolcanoMachine
from repro.util.tables import Table

# A Horner-scheme polynomial evaluator with a distance computation —
# two differently shaped FP kernels in one program.
SOURCE = """
double xs[256];
double ys[256];

double poly(double x) {
    // Horner: serial dependency chain (deep, narrow dataflow)
    return ((0.5 * x + 1.25) * x - 0.75) * x + 2.0;
}

int main() {
    int n = dataset_size();
    if (n < 16) n = 16;
    if (n > 256) n = 256;
    srand(dataset_seed());
    for (int i = 0; i < n; i++) {
        xs[i] = 0.01 * (double)(rand() % 200 - 100);
        ys[i] = 0.01 * (double)(rand() % 200 - 100);
    }
    double acc = 0.0;
    for (int it = 0; it < 25; it++) {
        for (int i = 0; i < n - 1; i++) {
            // distance-like expression: wide, parallel dataflow
            double dx = xs[i + 1] - xs[i];
            double dy = ys[i + 1] - ys[i];
            double d2 = dx * dx + dy * dy + 0.0001;
            acc += poly(xs[i]) / d2;
        }
    }
    print_f64(acc);
    return 0;
}
"""

ALGORITHMS = [
    ("maxmiso (paper)", MaxMisoIdentifier()),
    ("union-of-MISOs", UnionMisoIdentifier()),
    ("single-cut enum", SingleCutIdentifier(search_budget=20_000)),
]


def main() -> None:
    comp = compile_source(SOURCE, "custom")
    interp = Interpreter(comp.module, dataset_size=200, dataset_seed=99)
    run = interp.run("main")
    print(
        f"compiled {comp.loc} LOC, executed {run.steps} instructions, "
        f"result {run.output[0]:.4f}"
    )

    machine = WoolcanoMachine()
    table = Table(
        columns=["algorithm", "time [ms]", "candidates", "avg size", "ASIP ratio"],
        title="Identification algorithms on the custom kernel",
    )
    for label, identifier in ALGORITHMS:
        start = time.perf_counter()
        result = CandidateSearch(identifier=identifier).run(
            comp.module, run.profile
        )
        elapsed = (time.perf_counter() - start) * 1000
        speedup = machine.speedup(comp.module, run.profile, result.selected)
        table.add_row(
            [
                label,
                f"{elapsed:.2f}",
                result.candidate_count,
                f"{result.avg_candidate_size:.1f}",
                f"{speedup.ratio:.2f}x",
            ]
        )
    print()
    print(table.render())
    print(
        "\nNote how the deep Horner chain and the wide distance expression "
        "favour different algorithms: single-output MAXMISO captures the "
        "chain, multi-output enumeration can fuse the parallel terms."
    )


if __name__ == "__main__":
    main()
