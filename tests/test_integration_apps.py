"""Integration tests: real benchmark applications through the full JIT flow.

Uses the two fastest applications (sor, adpcm) on their small datasets to
keep runtime reasonable; the full 14-app sweep lives in benchmarks/.
"""

import pytest

from repro.apps import compile_app, get_app
from repro.core import AsipSpecializationProcess
from repro.ir.verifier import verify_module
from repro.vm import Interpreter
from repro.vm.patcher import BinaryPatcher
from repro.woolcano import WoolcanoMachine


@pytest.fixture(scope="module", params=["sor", "adpcm"])
def jit_run(request):
    app = get_app(request.param)
    compiled = compile_app(app)
    small = app.dataset("small")
    baseline = compiled.run(small)
    report = AsipSpecializationProcess().run(compiled.module, baseline.profile)
    return app, compiled, small, baseline, report


class TestFullFlowOnRealApps:
    def test_specialization_produces_bitstreams(self, jit_run):
        app, compiled, small, baseline, report = jit_run
        assert report.candidate_count >= 1
        for ci in report.implementations:
            assert ci.implementation.bitstream.size_bytes > 0
            assert ci.implementation.vhdl.line_count > 20

    def test_adaptation_preserves_program_output(self, jit_run):
        # Patch a *fresh* compilation: the module-scoped fixture must stay
        # unpatched for the other tests (candidates refer to their module).
        app, _, small, baseline, _ = jit_run
        fresh = compile_app(app)
        base2 = fresh.run(small)
        assert base2.output == baseline.output
        report = AsipSpecializationProcess().run(fresh.module, base2.profile)
        patcher = BinaryPatcher()
        patcher.patch_module(
            fresh.module,
            [ci.estimate.candidate for ci in report.implementations],
        )
        verify_module(fresh.module)
        interp = Interpreter(
            fresh.module, dataset_size=small.size, dataset_seed=small.seed
        )
        patcher.install(interp)
        patched = interp.run("main")
        assert patched.output == baseline.output
        assert patched.steps <= baseline.steps

    def test_speedup_and_overhead_sane(self, jit_run):
        app, compiled, small, baseline, report = jit_run
        machine = WoolcanoMachine()
        sp = machine.speedup(
            compiled.module,
            baseline.profile,
            [ci.estimate for ci in report.implementations],
        )
        assert 1.0 <= sp.ratio < 50.0
        # overhead: minutes-scale per candidate, dominated by the tool flow
        assert report.toolflow_seconds > 170 * report.candidate_count
        assert report.search.search_seconds < 2.0

    def test_candidate_search_is_milliseconds(self, jit_run):
        """Paper: 'total candidate search time is in the order of
        milliseconds and thus insignificant'."""
        app, compiled, small, baseline, report = jit_run
        assert report.search.search_seconds * 1000 < 500
        assert (
            report.search.search_seconds < 0.01 * report.toolflow_seconds
        )
