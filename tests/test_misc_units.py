"""Unit tests for smaller corners: intrinsic edge cases, printer formats,
CAD project/DRC errors, device geometry."""

import math

import pytest

from repro.frontend import compile_source
from repro.vm import Interpreter

from conftest import run_main


class TestIntrinsicEdgeCases:
    def test_exp_overflow_clamps_to_inf(self):
        r = run_main("int main() { print_f64(exp(1000.0)); return 0; }")
        assert math.isinf(r.output[0]) and r.output[0] > 0

    def test_log_of_zero_and_negative(self):
        r = run_main(
            "int main() { print_f64(log(0.0)); print_f64(log(-1.0)); return 0; }"
        )
        assert math.isinf(r.output[0]) and r.output[0] < 0
        assert math.isnan(r.output[1])

    def test_sqrt_negative_is_nan(self):
        r = run_main("int main() { print_f64(sqrt(-4.0)); return 0; }")
        assert math.isnan(r.output[0])

    def test_pow(self):
        r = run_main("int main() { print_f64(pow(2.0, 10.0)); return 0; }")
        assert r.output[0] == 1024.0

    def test_int_helpers(self):
        r = run_main(
            "int main() { print_i32(abs(-7)); print_i32(min(3, -2)); "
            "print_i32(max(3, -2)); return 0; }"
        )
        assert r.output == [7, -2, 3]

    def test_floor_ceil(self):
        r = run_main(
            "int main() { print_f64(floor(2.7)); print_f64(ceil(-2.7)); return 0; }"
        )
        assert r.output == [2.0, -2.0]

    def test_clock_monotone(self):
        src = """
int main() {
    long t0 = clock();
    int acc = 0;
    for (int i = 0; i < 100; i++) acc += i;
    long t1 = clock();
    print_i32(t1 > t0 ? 1 : 0);
    return acc;
}
"""
        assert run_main(src).output[0] == 1

    def test_rand_range(self):
        src = """
int main() {
    srand(5);
    int ok = 1;
    for (int i = 0; i < 200; i++) {
        int r = rand();
        if (r < 0) ok = 0;
    }
    print_i32(ok);
    return 0;
}
"""
        assert run_main(src).output[0] == 1


class TestPrinterFormats:
    def test_instruction_formats(self):
        from repro.ir import print_function

        src = """
double g = 2.5;
double f(double x, int k) {
    double v = x * g;
    if (k > 0) v = v + 1.0;
    return v;
}
int main() { print_f64(f(1.0, 2)); return 0; }
"""
        module = compile_source(src, "fmt", opt_level=1).module
        text = print_function(module.function("f"))
        assert "define f64 @f(f64 %x, i32 %k)" in text
        assert "fmul" in text
        assert "load f64, ptr @g" in text
        assert "icmp sgt" in text
        assert "condbr" in text
        assert "phi f64" in text or "fadd" in text
        assert text.strip().endswith("}")

    def test_module_header_and_globals(self):
        from repro.ir import print_module

        src = "int xs[3] = {1, 2, 3};\nint main() { return xs[0]; }"
        module = compile_source(src, "hdr").module
        text = print_module(module)
        assert text.startswith("; module hdr")
        assert "@xs = global i32 x 3 init [1, 2, 3]" in text


class TestCadProjectAndDrc:
    def test_duplicate_vhdl_rejected(self):
        from repro.fpga import CadProject

        project = CadProject(name="p")
        project.add_vhdl("a.vhd", "-- x")
        with pytest.raises(ValueError, match="duplicate"):
            project.add_vhdl("a.vhd", "-- y")

    def test_defaults_configured(self):
        from repro.fpga import CadProject

        project = CadProject(name="p")
        project.configure_defaults()
        assert project.settings["family"] == "virtex4"
        assert project.settings["flow"] == "eapr"

    def test_multiple_driver_drc(self):
        from repro.fpga import Translator, VIRTEX4_FX100
        from repro.fpga.synthesis import SynthesizedDesign
        from repro.fpga.translate import TranslateError
        from repro.pivpav.netlist import Netlist

        nl = Netlist("bad")
        a = nl.add_primitive("LUT4")
        b = nl.add_primitive("LUT4")
        nl.connect("contested", a, 4)  # LUT output pin
        nl.connect("contested", b, 4)  # second driver!
        design = SynthesizedDesign(netlist=nl, instance_count=0, glue_luts=2)
        with pytest.raises(TranslateError, match="drivers"):
            Translator().translate(design, VIRTEX4_FX100)

    def test_constraints_reference_region(self):
        from repro.fpga import Translator, VIRTEX4_FX100
        from repro.fpga.synthesis import SynthesizedDesign
        from repro.pivpav.netlist import Netlist

        nl = Netlist("ok")
        a = nl.add_primitive("LUT4")
        nl.connect("n0", a, 4)
        design = SynthesizedDesign(netlist=nl, instance_count=0, glue_luts=1)
        db = Translator().translate(design, VIRTEX4_FX100)
        assert db.constraints["AREA_GROUP"] == "ci_region"
        assert db.constraints["MODE"] == "RECONFIG"


class TestDeviceGeometry:
    def test_fx100_capacity(self):
        from repro.fpga import VIRTEX4_FX100

        dev = VIRTEX4_FX100
        assert dev.total_luts == dev.clb_cols * dev.clb_rows * 8
        assert dev.region.cell_capacity == (
            dev.region.cols * dev.region.rows * dev.region.cells_per_clb
        )

    def test_partial_smaller_than_full(self):
        from repro.fpga import VIRTEX4_FX100

        dev = VIRTEX4_FX100
        assert dev.partial_bitstream_bytes() < dev.full_bitstream_bytes()

    def test_fx20_smaller_than_fx100(self):
        from repro.fpga import VIRTEX4_FX100
        from repro.fpga.device import VIRTEX4_FX20

        assert VIRTEX4_FX20.total_luts < VIRTEX4_FX100.total_luts
        assert (
            VIRTEX4_FX20.partial_bitstream_bytes()
            < VIRTEX4_FX100.partial_bitstream_bytes()
        )


class TestAppsBase:
    def test_compile_app_fresh_modules(self):
        from repro.apps import compile_app, get_app

        a = compile_app(get_app("sor"))
        b = compile_app(get_app("sor"))
        assert a.module is not b.module  # callers may patch modules

    def test_run_accepts_dataset_name_or_spec(self):
        from repro.apps import compile_app, get_app

        app = get_app("sor")
        compiled = compile_app(app)
        r1 = compiled.run("small")
        r2 = compiled.run(app.dataset("small"))
        assert r1.output == r2.output
