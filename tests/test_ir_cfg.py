"""Tests for CFG analyses: RPO, dominators, loops."""

import pytest

from repro.ir import I32, IRBuilder, Module
from repro.ir.cfg import ControlFlowInfo, reverse_postorder
from repro.ir.opcodes import ICmpPred

from conftest import build_sumsq_module


def _loop_func():
    """entry -> loop <-> body; loop -> done (the sumsq shape)."""
    module = build_sumsq_module()
    return module.function("sumsq")


class TestReversePostorder:
    def test_entry_first(self):
        f = _loop_func()
        rpo = reverse_postorder(f)
        assert rpo[0] is f.entry

    def test_all_reachable_blocks_included(self):
        f = _loop_func()
        assert {b.name for b in reverse_postorder(f)} == {
            "entry",
            "loop",
            "body",
            "done",
        }

    def test_unreachable_excluded(self):
        f = _loop_func()
        dead = f.add_block("dead")
        IRBuilder(dead).br(dead)
        names = {b.name for b in reverse_postorder(f)}
        assert "dead" not in names

    def test_rpo_respects_edges_for_dags(self):
        m = Module("t")
        f = m.declare_function("f", I32, [("a", I32)])
        e = f.add_block("e")
        l = f.add_block("l")
        r = f.add_block("r")
        j = f.add_block("j")
        b = IRBuilder(e)
        c = b.icmp(ICmpPred.SGT, f.args[0], b.i32(0))
        b.condbr(c, l, r)
        IRBuilder(l).br(j)
        IRBuilder(r).br(j)
        IRBuilder(j).ret(f.args[0])
        rpo = reverse_postorder(f)
        pos = {blk.name: i for i, blk in enumerate(rpo)}
        assert pos["e"] < pos["l"] and pos["e"] < pos["r"]
        assert pos["l"] < pos["j"] and pos["r"] < pos["j"]


class TestDominators:
    def test_entry_dominates_all(self):
        f = _loop_func()
        cfg = ControlFlowInfo(f)
        for block in f.blocks:
            assert cfg.dominates(f.entry, block)

    def test_dominates_is_reflexive(self):
        f = _loop_func()
        cfg = ControlFlowInfo(f)
        for block in f.blocks:
            assert cfg.dominates(block, block)

    def test_loop_header_dominates_body(self):
        f = _loop_func()
        cfg = ControlFlowInfo(f)
        loop = f.block_named("loop")
        body = f.block_named("body")
        done = f.block_named("done")
        assert cfg.dominates(loop, body)
        assert cfg.dominates(loop, done)
        assert not cfg.dominates(body, done)

    def test_immediate_dominators(self):
        f = _loop_func()
        cfg = ControlFlowInfo(f)
        assert cfg.immediate_dominator(f.entry) is None
        assert cfg.immediate_dominator(f.block_named("loop")) is f.entry
        assert cfg.immediate_dominator(f.block_named("body")).name == "loop"
        assert cfg.immediate_dominator(f.block_named("done")).name == "loop"

    def test_predecessors(self):
        f = _loop_func()
        cfg = ControlFlowInfo(f)
        preds = {b.name for b in cfg.predecessors(f.block_named("loop"))}
        assert preds == {"entry", "body"}


class TestLoops:
    def test_natural_loop_found(self):
        f = _loop_func()
        cfg = ControlFlowInfo(f)
        assert len(cfg.loops) == 1
        loop = cfg.loops[0]
        assert loop.header.name == "loop"
        assert {b.name for b in loop.members} == {"loop", "body"}

    def test_loop_depth(self):
        f = _loop_func()
        cfg = ControlFlowInfo(f)
        assert cfg.loop_depth(f.block_named("body")) == 1
        assert cfg.loop_depth(f.block_named("done")) == 0

    def test_nested_loops(self):
        src = """
int main() {
    int acc = 0;
    for (int i = 0; i < 4; i++)
        for (int j = 0; j < 4; j++)
            acc += i * j;
    return acc;
}
"""
        from repro.frontend import compile_source

        # opt level 0 keeps the loop structure untouched
        module = compile_source(src, "nested", opt_level=0).module
        f = module.function("main")
        cfg = ControlFlowInfo(f)
        assert len(cfg.loops) == 2
        depths = sorted(len(l.members) for l in cfg.loops)
        assert depths[0] < depths[1]  # inner loop smaller than outer
        inner = min(cfg.loops, key=lambda l: len(l.members))
        assert cfg.loop_depth(inner.header) == 2
