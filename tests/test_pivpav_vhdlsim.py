"""Tests for the VHDL datapath simulator: generated hardware must compute
exactly what the candidate's software evaluator computes."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.ise import CandidateSearch
from repro.ise.pruning import NO_PRUNING
from repro.pivpav import DatapathGenerator, VhdlDatapathSimulator, VhdlSimError
from repro.util.rng import DeterministicRng
from repro.vm import Interpreter
from repro.vm.patcher import build_evaluator


def _candidates_of(src: str, name: str):
    comp = compile_source(src, name)
    result = Interpreter(comp.module).run("main")
    search = CandidateSearch(
        pruning=NO_PRUNING, min_total_cycles_saved=0.0
    ).run(comp.module, result.profile)
    return [est.candidate for est in search.selected]


def _check_equivalence(candidate, trials: int = 6) -> int:
    gen = DatapathGenerator()
    vhdl = gen.generate(candidate)
    sim = VhdlDatapathSimulator(vhdl.source)
    evaluator = build_evaluator(candidate)
    rng = DeterministicRng(f"vhdlsim/{candidate.signature}")
    checked = 0
    for _ in range(trials):
        args = []
        port_values = {}
        for k, value in enumerate(candidate.inputs):
            if value.type.is_float:
                v = float(rng.uniform(-4.0, 4.0))
            elif value.type.is_ptr:
                v = int(rng.integers(8, 1 << 20))
            elif value.type.bits == 1:
                v = int(rng.integers(0, 2))
            else:
                v = int(rng.integers(-1000, 1000))
            args.append(v)
            port_values[f"in{k}"] = v
        want = evaluator(list(args))
        got = sim.evaluate(port_values)["out0"]
        if isinstance(want, float) and math.isnan(want):
            assert isinstance(got, float) and math.isnan(got)
        else:
            assert got == want
        checked += 1
    return checked


FP_SRC = """
double a[64]; double b[64]; double c[64];
int main() {
    for (int i = 0; i < 64; i++) { a[i] = 0.01 * (double)i; b[i] = 1.5; }
    double s = 0.0;
    for (int it = 0; it < 5; it++)
        for (int i = 1; i < 63; i++) {
            c[i] = a[i] * b[i] + a[i + 1] * 0.25 - b[i] / 3.0;
            s += c[i] * c[i];
        }
    print_f64(s);
    return 0;
}
"""

INT_SRC = """
int xs[64];
int main() {
    for (int i = 0; i < 64; i++) xs[i] = i * 7 - 20;
    int acc = 0;
    for (int it = 0; it < 6; it++)
        for (int i = 1; i < 63; i++) {
            int mixed = ((xs[i] * 13 + xs[i - 1]) ^ (xs[i + 1] << 2)) & 4095;
            acc += mixed > 100 ? mixed - xs[i] : mixed + xs[i];
        }
    print_i32(acc);
    return 0;
}
"""


class TestHardwareSoftwareEquivalence:
    def test_fp_candidates(self):
        candidates = _candidates_of(FP_SRC, "vhdlsim_fp")
        assert candidates
        total = sum(_check_equivalence(c) for c in candidates)
        assert total >= 6

    def test_int_candidates_with_compare_select(self):
        candidates = _candidates_of(INT_SRC, "vhdlsim_int")
        assert candidates
        total = sum(_check_equivalence(c) for c in candidates)
        assert total >= 6

    def test_all_suite_hot_candidates(self):
        """Every selected candidate of two real apps survives RTL checking."""
        from repro.apps import compile_app, get_app

        for app_name in ("sor", "whetstone"):
            compiled = compile_app(get_app(app_name))
            profile = compiled.run("small").profile
            search = CandidateSearch().run(compiled.module, profile)
            for est in search.selected:
                _check_equivalence(est.candidate, trials=3)


class TestSimulatorRobustness:
    def test_missing_input_detected(self):
        candidates = _candidates_of(FP_SRC, "vhdlsim_missing")
        vhdl = DatapathGenerator().generate(candidates[0])
        sim = VhdlDatapathSimulator(vhdl.source)
        with pytest.raises(VhdlSimError, match="missing value"):
            sim.evaluate({})

    def test_ports_reported(self):
        candidates = _candidates_of(FP_SRC, "vhdlsim_ports")
        cand = candidates[0]
        vhdl = DatapathGenerator().generate(cand)
        sim = VhdlDatapathSimulator(vhdl.source)
        assert len(sim.input_ports) == len(cand.inputs)
        assert sim.output_ports == ["out0"]
        for k, value in enumerate(cand.inputs):
            assert sim.input_type(f"in{k}").kind in ("int", "float", "ptr")

    def test_unknown_component_rejected(self):
        from repro.pivpav.vhdlsim import core_model

        with pytest.raises(VhdlSimError):
            core_model("quantum_alu_q128")


class TestPredicatePreservation:
    def test_different_predicates_different_vhdl(self):
        """The regression this simulator exists to catch: slt vs sge."""
        src_template = """
int main() {{
    int acc = 0;
    for (int i = 0; i < 40; i++) {{
        int v = (i * 17 + 3) & 255;
        acc += (v {op} 100) ? v * 3 + 1 : v - 7;
    }}
    print_i32(acc);
    return 0;
}}
"""
        vhdls = []
        for op in ("<", ">="):
            cands = _candidates_of(src_template.format(op=op), f"pred_{op!r}")
            with_cmp = [
                c
                for c in cands
                if any(n.opcode.value == "icmp" for n in c.nodes)
            ]
            if with_cmp:
                vhdls.append(DatapathGenerator().generate(with_cmp[0]).source)
        if len(vhdls) == 2:
            assert vhdls[0] != vhdls[1]
            assert ("icmp_slt" in vhdls[0]) != ("icmp_slt" in vhdls[1])
