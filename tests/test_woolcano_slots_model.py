"""Tests for the slot-constrained speedup model (ablation A4 support)."""

import pytest

from repro.ise import CandidateSearch
from repro.ise.pruning import NO_PRUNING
from repro.woolcano import CustomInstructionSlots, WoolcanoMachine


@pytest.fixture(scope="module")
def machine_setup():
    from repro.frontend import compile_source
    from repro.vm import Interpreter

    src = """
double a[64]; double b[64]; double c[64]; double d[64];
int main() {
    for (int i = 0; i < 64; i++) { a[i] = 0.01 * (double)i; b[i] = 2.0; }
    double s = 0.0;
    for (int it = 0; it < 10; it++)
        for (int i = 1; i < 63; i++) {
            c[i] = a[i] * b[i] + a[i - 1] * 0.5;
            d[i] = b[i] / 3.0 - a[i + 1] * 0.25;
            s += c[i] * d[i] + (c[i] - d[i]) * 0.125;
        }
    print_f64(s);
    return 0;
}
"""
    module = compile_source(src, "slots").module
    profile = Interpreter(module).run("main").profile
    search = CandidateSearch(pruning=NO_PRUNING).run(module, profile)
    return module, profile, search


class TestSlotConstrainedSpeedup:
    def test_zero_slots_no_speedup(self, machine_setup):
        module, profile, search = machine_setup
        machine = WoolcanoMachine()
        sp = machine.speedup_with_slots(module, profile, search.selected, 0)
        assert sp.ratio == pytest.approx(1.0)

    def test_monotone_in_capacity(self, machine_setup):
        module, profile, search = machine_setup
        machine = WoolcanoMachine()
        ratios = [
            machine.speedup_with_slots(module, profile, search.selected, c).ratio
            for c in range(0, len(search.selected) + 2)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:]))

    def test_enough_slots_equals_unconstrained(self, machine_setup):
        module, profile, search = machine_setup
        machine = WoolcanoMachine()
        constrained = machine.speedup_with_slots(
            module, profile, search.selected, len(search.selected)
        )
        unconstrained = machine.speedup(module, profile, search.selected)
        assert constrained.ratio == pytest.approx(unconstrained.ratio)

    def test_top_candidate_chosen_first(self, machine_setup):
        module, profile, search = machine_setup
        machine = WoolcanoMachine()
        one = machine.speedup_with_slots(module, profile, search.selected, 1)
        # one slot must give at least as much as any single candidate alone
        singles = [
            machine.speedup(module, profile, [est]).ratio
            for est in search.selected
        ]
        assert one.ratio == pytest.approx(max(singles), rel=1e-9)

    def test_default_capacity_from_machine_slots(self, machine_setup):
        module, profile, search = machine_setup
        machine = WoolcanoMachine(slots=CustomInstructionSlots(capacity=1))
        default = machine.speedup_with_slots(module, profile, search.selected)
        explicit = machine.speedup_with_slots(module, profile, search.selected, 1)
        assert default.ratio == explicit.ratio

    def test_negative_capacity_rejected(self, machine_setup):
        module, profile, search = machine_setup
        machine = WoolcanoMachine()
        with pytest.raises(ValueError):
            machine.speedup_with_slots(module, profile, search.selected, -1)


def _bitstream(n: int):
    from repro.fpga.bitgen import PartialBitstream

    return PartialBitstream(
        entity=f"ci_{n}",
        data=b"\xaa\x99\x55\x66" + bytes([n % 256]) * 16,
        frame_count=4,
        column_count=1,
        nominal_size_bytes=3_000_000,
    )


class TestSlotErrorPaths:
    """Error semantics of the contention-aware slot pool."""

    def test_load_when_full_without_eviction(self):
        from repro.woolcano import SlotError

        slots = CustomInstructionSlots(capacity=2)
        slots.load(0, 1, _bitstream(0))
        slots.load(1, 2, _bitstream(1))
        with pytest.raises(SlotError) as exc:
            slots.load(2, 3, _bitstream(2), allow_evict=False)
        assert "all 2 slots are occupied" in str(exc.value)
        assert "eviction is disabled" in str(exc.value)
        # The failed load changed nothing.
        assert slots.resident == [0, 1]
        assert slots.loads == 2
        assert slots.evictions == 0

    def test_touch_non_resident_message(self):
        from repro.woolcano import SlotError

        slots = CustomInstructionSlots(capacity=2)
        with pytest.raises(SlotError) as exc:
            slots.touch(7)
        assert "custom instruction #7 is not loaded" in str(exc.value)

    def test_evict_non_resident_message(self):
        from repro.woolcano import SlotError

        slots = CustomInstructionSlots(capacity=2)
        slots.load(0, 1, _bitstream(0))
        with pytest.raises(SlotError) as exc:
            slots.evict(3)
        assert "custom instruction #3 is not loaded" in str(exc.value)

    def test_explicit_evict_counts_reason(self):
        slots = CustomInstructionSlots(capacity=2)
        slots.load(0, 1, _bitstream(0))
        evicted = slots.evict(0)
        assert evicted.custom_id == 0
        assert slots.resident == []
        assert slots.evictions_by_reason == {"explicit": 1}
        assert slots.was_evicted(0)

    def test_unknown_policy_rejected(self):
        from repro.woolcano import SlotError

        with pytest.raises(SlotError) as exc:
            CustomInstructionSlots(capacity=2, policy="fifo")
        assert "unknown eviction policy 'fifo'" in str(exc.value)
        assert "lru" in str(exc.value)

    def test_no_slots_machine_rejected(self):
        from repro.woolcano import SlotError

        slots = CustomInstructionSlots(capacity=0)
        with pytest.raises(SlotError) as exc:
            slots.load(0, 1, _bitstream(0))
        assert "no custom instruction slots" in str(exc.value)


class TestEvictionPolicies:
    def test_lfu_protects_frequent(self):
        slots = CustomInstructionSlots(capacity=2, policy="lfu")
        slots.load(0, 1, _bitstream(0))
        slots.load(1, 2, _bitstream(1))
        slots.touch(0)
        slots.touch(0)
        slots.touch(1)  # 1 is the more recent but less frequent occupant
        evicted = slots.load(2, 3, _bitstream(2))
        assert evicted.custom_id == 1  # lower use_count loses despite recency
        assert slots.evictions_by_reason == {"lfu": 1}

    def test_breakeven_evicts_lowest_value(self):
        slots = CustomInstructionSlots(capacity=2, policy="breakeven")
        slots.load(0, 1, _bitstream(0), value=100.0)
        slots.load(1, 2, _bitstream(1), value=1.0)
        slots.touch(1)  # recency does not save a low-value occupant
        evicted = slots.load(2, 3, _bitstream(2), value=50.0)
        assert evicted.custom_id == 1
        assert slots.resident == [0, 2]

    def test_breakeven_use_count_can_rescue(self):
        # A cheap instruction touched often outranks an untouched pricier
        # one: value x (1 + use_count) blends density with frequency.
        slots = CustomInstructionSlots(capacity=2, policy="breakeven")
        slots.load(0, 1, _bitstream(0), value=10.0)
        slots.load(1, 2, _bitstream(1), value=4.0)
        for _ in range(3):
            slots.touch(1)  # 4 * (1+3) = 16 > 10 * (1+0) = 10
        evicted = slots.load(2, 3, _bitstream(2), value=50.0)
        assert evicted.custom_id == 0

    def test_reload_accounting(self):
        slots = CustomInstructionSlots(capacity=1, policy="lru")
        slots.load(0, 1, _bitstream(0))
        slots.load(1, 2, _bitstream(1))  # evicts 0
        assert slots.was_evicted(0)
        slots.load(0, 1, _bitstream(0))  # reload of 0
        assert slots.reloads == 1
        assert slots.loads == 3
        assert slots.evictions == 2

    def test_stats_shape(self):
        slots = CustomInstructionSlots(capacity=2, policy="breakeven")
        slots.load(0, 1, _bitstream(0), value=1.0, owner="fft")
        stats = slots.stats()
        assert stats["capacity"] == 2
        assert stats["policy"] == "breakeven"
        assert stats["resident"] == 1
        assert stats["occupancy_pct"] == 50.0
        assert stats["eviction_rate"] == 0.0

    def test_slot_indices_are_reused(self):
        # The physical slot index freed by an eviction hosts the next
        # load, so occupancy timelines reconstruct per physical slot.
        slots = CustomInstructionSlots(capacity=2, policy="lru")
        slots.load(0, 1, _bitstream(0))
        slots.load(1, 2, _bitstream(1))
        first_index = slots._slots[0].slot_index
        slots.evict(0)
        slots.load(2, 3, _bitstream(2))
        assert slots._slots[2].slot_index == first_index
