"""Tests for the slot-constrained speedup model (ablation A4 support)."""

import pytest

from repro.ise import CandidateSearch
from repro.ise.pruning import NO_PRUNING
from repro.woolcano import CustomInstructionSlots, WoolcanoMachine


@pytest.fixture(scope="module")
def machine_setup():
    from repro.frontend import compile_source
    from repro.vm import Interpreter

    src = """
double a[64]; double b[64]; double c[64]; double d[64];
int main() {
    for (int i = 0; i < 64; i++) { a[i] = 0.01 * (double)i; b[i] = 2.0; }
    double s = 0.0;
    for (int it = 0; it < 10; it++)
        for (int i = 1; i < 63; i++) {
            c[i] = a[i] * b[i] + a[i - 1] * 0.5;
            d[i] = b[i] / 3.0 - a[i + 1] * 0.25;
            s += c[i] * d[i] + (c[i] - d[i]) * 0.125;
        }
    print_f64(s);
    return 0;
}
"""
    module = compile_source(src, "slots").module
    profile = Interpreter(module).run("main").profile
    search = CandidateSearch(pruning=NO_PRUNING).run(module, profile)
    return module, profile, search


class TestSlotConstrainedSpeedup:
    def test_zero_slots_no_speedup(self, machine_setup):
        module, profile, search = machine_setup
        machine = WoolcanoMachine()
        sp = machine.speedup_with_slots(module, profile, search.selected, 0)
        assert sp.ratio == pytest.approx(1.0)

    def test_monotone_in_capacity(self, machine_setup):
        module, profile, search = machine_setup
        machine = WoolcanoMachine()
        ratios = [
            machine.speedup_with_slots(module, profile, search.selected, c).ratio
            for c in range(0, len(search.selected) + 2)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:]))

    def test_enough_slots_equals_unconstrained(self, machine_setup):
        module, profile, search = machine_setup
        machine = WoolcanoMachine()
        constrained = machine.speedup_with_slots(
            module, profile, search.selected, len(search.selected)
        )
        unconstrained = machine.speedup(module, profile, search.selected)
        assert constrained.ratio == pytest.approx(unconstrained.ratio)

    def test_top_candidate_chosen_first(self, machine_setup):
        module, profile, search = machine_setup
        machine = WoolcanoMachine()
        one = machine.speedup_with_slots(module, profile, search.selected, 1)
        # one slot must give at least as much as any single candidate alone
        singles = [
            machine.speedup(module, profile, [est]).ratio
            for est in search.selected
        ]
        assert one.ratio == pytest.approx(max(singles), rel=1e-9)

    def test_default_capacity_from_machine_slots(self, machine_setup):
        module, profile, search = machine_setup
        machine = WoolcanoMachine(slots=CustomInstructionSlots(capacity=1))
        default = machine.speedup_with_slots(module, profile, search.selected)
        explicit = machine.speedup_with_slots(module, profile, search.selected, 1)
        assert default.ratio == explicit.ratio

    def test_negative_capacity_rejected(self, machine_setup):
        module, profile, search = machine_setup
        machine = WoolcanoMachine()
        with pytest.raises(ValueError):
            machine.speedup_with_slots(module, profile, search.selected, -1)
