"""Tests for the PivPav circuit database, estimator, VHDL generator and
netlist cache."""

import pytest

from repro.ise import CandidateSearch
from repro.pivpav import (
    CircuitDatabase,
    DatapathGenerator,
    NetlistCache,
    PivPavEstimator,
    core_name_for,
)
from repro.pivpav.corelib import CORE_SPECS
from repro.pivpav.database import default_database
from repro.pivpav.netlist import NETLIST_SCALE, generate_core_netlist


@pytest.fixture
def selected(fp_kernel_profile):
    module, profile, _ = fp_kernel_profile
    return CandidateSearch().run(module, profile).selected


class TestDatabase:
    def test_every_core_has_90_plus_metrics(self):
        db = CircuitDatabase()
        for name in db.core_names:
            rec = db.record(name)
            assert rec.metrics.metric_count >= 90, name

    def test_metrics_deterministic(self):
        a = CircuitDatabase().record("fadd_f64").metrics.as_dict()
        b = CircuitDatabase().record("fadd_f64").metrics.as_dict()
        assert a == b

    def test_records_cached(self):
        db = CircuitDatabase()
        assert db.record("fmul_f64") is db.record("fmul_f64")

    def test_unknown_core_rejected(self):
        with pytest.raises(KeyError):
            CircuitDatabase().record("warp_drive")

    def test_core_resolution_for_instructions(self, fp_kernel_profile):
        module, _, _ = fp_kernel_profile
        from repro.ise.feasibility import is_feasible_instruction

        for func in module.defined_functions():
            for block in func.blocks:
                for instr in block.instructions:
                    if is_feasible_instruction(instr) and instr.has_result:
                        name = core_name_for(instr)
                        assert name in CORE_SPECS

    def test_fp64_larger_than_fp32(self):
        db = default_database()
        assert (
            db.record("fadd_f64").spec.luts > db.record("fadd_f32").spec.luts
        )

    def test_netlist_scaled_from_area(self):
        db = CircuitDatabase()
        rec = db.record("fdiv_f64")
        assert rec.netlist.count("LUT4") == max(1, rec.spec.luts // NETLIST_SCALE)
        assert rec.netlist.count("DSP48") == rec.spec.dsp48


class TestEstimator:
    def test_fp_candidates_profitable(self, selected):
        assert any(est.cycles_saved > 0 for est in selected)

    def test_hw_cycles_includes_transfer_floor(self, selected):
        for est in selected:
            assert est.hw_cycles >= 1 + 1  # decode + at least the exec cycle

    def test_latency_positive(self, selected):
        for est in selected:
            assert est.hw_latency_ns > 0

    def test_area_aggregation(self, selected):
        db = default_database()
        est = selected[0]
        manual = sum(db.record_for(n).spec.luts for n in est.candidate.nodes)
        assert est.luts == manual

    def test_local_speedup_consistent(self, selected):
        est = selected[0]
        assert est.local_speedup == pytest.approx(est.sw_cycles / est.hw_cycles)


class TestVhdlGenerator:
    def test_generates_parseable_vhdl(self, selected):
        from repro.fpga.syntax import VhdlSyntaxChecker

        gen = DatapathGenerator()
        for est in selected:
            vhdl = gen.generate(est.candidate)
            design = VhdlSyntaxChecker().check(vhdl.source)
            assert design.entity == vhdl.entity_name
            assert len(design.instances) == est.candidate.size

    def test_ports_match_candidate_interface(self, selected):
        gen = DatapathGenerator()
        est = selected[0]
        vhdl = gen.generate(est.candidate)
        from repro.fpga.syntax import VhdlSyntaxChecker

        design = VhdlSyntaxChecker().check(vhdl.source)
        in_ports = [p for p in design.ports if p.direction == "in"]
        out_ports = [p for p in design.ports if p.direction == "out"]
        # clk + rst + data inputs
        assert len(in_ports) == 2 + len(est.candidate.inputs)
        assert len(out_ports) == len(est.candidate.outputs)

    def test_entity_name_derived_from_signature(self, selected):
        gen = DatapathGenerator()
        v1 = gen.generate(selected[0].candidate)
        v2 = gen.generate(selected[0].candidate)
        assert v1.entity_name == v2.entity_name
        assert v1.source == v2.source

    def test_core_names_listed(self, selected):
        gen = DatapathGenerator()
        vhdl = gen.generate(selected[0].candidate)
        assert vhdl.core_names
        for name in vhdl.core_names:
            assert name in CORE_SPECS


class TestNetlistCache:
    def test_hits_after_first_extraction(self):
        cache = NetlistCache()
        cache.get("fadd_f64")
        cache.get("fadd_f64")
        cache.get("fmul_f64")
        assert cache.hits == 1
        assert cache.misses == 2
        assert 0 < cache.hit_rate < 1

    def test_extract_all(self):
        cache = NetlistCache()
        out = cache.extract_all(["fadd_f64", "fmul_f64", "fadd_f64"])
        assert set(out) == {"fadd_f64", "fmul_f64"}

    def test_netlist_generation_deterministic(self):
        n1 = generate_core_netlist("x", 64, 32, 1, 0)
        n2 = generate_core_netlist("x", 64, 32, 1, 0)
        assert [p.kind for p in n1.primitives] == [p.kind for p in n2.primitives]
        assert n1.nets.keys() == n2.nets.keys()

    def test_netlist_merge_renames(self):
        a = generate_core_netlist("a", 32, 16, 0, 0)
        b = generate_core_netlist("b", 32, 16, 0, 0)
        merged = a.merged_with(b, "u1")
        assert len(merged.primitives) == len(a.primitives) + len(b.primitives)
        assert any(n.startswith("u1/") for n in merged.nets)
