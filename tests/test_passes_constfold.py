"""Tests for constant folding and algebraic simplification."""

import math

import pytest

from repro.ir import I32, I64, F64, IRBuilder, Module
from repro.ir.opcodes import FCmpPred, ICmpPred, Opcode
from repro.ir.passes import ConstantFoldPass
from repro.ir.passes.constfold import (
    ConstantFoldError,
    fold_binary,
    fold_cast,
    fold_fcmp,
    fold_icmp,
)
from repro.ir.types import I1, I8
from repro.ir.values import Constant


class TestFoldBinary:
    def test_add_wraps(self):
        assert fold_binary(Opcode.ADD, I32, 2**31 - 1, 1) == -(2**31)

    def test_sdiv_truncates_toward_zero(self):
        assert fold_binary(Opcode.SDIV, I32, -7, 2) == -3
        assert fold_binary(Opcode.SDIV, I32, 7, -2) == -3

    def test_srem_sign_follows_dividend(self):
        assert fold_binary(Opcode.SREM, I32, -7, 3) == -1
        assert fold_binary(Opcode.SREM, I32, 7, -3) == 1

    def test_udiv_unsigned(self):
        assert fold_binary(Opcode.UDIV, I32, -1, 2) == (2**32 - 1) // 2

    def test_div_by_zero_raises(self):
        for op in (Opcode.SDIV, Opcode.UDIV, Opcode.SREM, Opcode.UREM):
            with pytest.raises(ConstantFoldError):
                fold_binary(op, I32, 1, 0)

    def test_shifts(self):
        assert fold_binary(Opcode.SHL, I32, 1, 31) == -(2**31)
        assert fold_binary(Opcode.LSHR, I32, -1, 28) == 0xF
        assert fold_binary(Opcode.ASHR, I32, -16, 2) == -4

    def test_shift_amount_wraps_at_width(self):
        assert fold_binary(Opcode.SHL, I32, 1, 32) == 1  # 32 % 32 == 0

    def test_float_ops(self):
        assert fold_binary(Opcode.FADD, F64, 0.5, 0.25) == 0.75
        assert fold_binary(Opcode.FDIV, F64, 1.0, 0.0) == math.inf
        assert math.isnan(fold_binary(Opcode.FREM, F64, 1.0, 0.0))

    def test_fold_icmp_signed_vs_unsigned(self):
        assert fold_icmp(ICmpPred.SLT, I32, -1, 0) == 1
        assert fold_icmp(ICmpPred.ULT, I32, -1, 0) == 0  # -1 is max unsigned

    def test_fold_fcmp_nan_ordered_false(self):
        assert fold_fcmp(FCmpPred.OEQ, math.nan, math.nan) == 0
        assert fold_fcmp(FCmpPred.OLE, math.nan, 0.0) == 0

    def test_fold_casts(self):
        assert fold_cast(Opcode.SEXT, I8, I32, -5) == -5
        assert fold_cast(Opcode.ZEXT, I8, I32, -1) == 255
        assert fold_cast(Opcode.TRUNC, I32, I8, 257) == 1
        assert fold_cast(Opcode.FPTOSI, F64, I32, 2.9) == 2
        assert fold_cast(Opcode.FPTOSI, F64, I32, -2.9) == -2
        assert fold_cast(Opcode.SITOFP, I32, F64, 3) == 3.0

    def test_fptrunc_loses_precision(self):
        narrowed = fold_cast(Opcode.FPTRUNC, F64, F64, 1.0000000001)
        assert narrowed == pytest.approx(1.0)


def _func_with(expr_builder):
    m = Module("t")
    f = m.declare_function("f", I32, [("a", I32)])
    entry = f.add_block("entry")
    b = IRBuilder(entry)
    result = expr_builder(f, b)
    b.ret(result)
    return m, f


class TestPassBehaviour:
    def test_folds_constant_tree(self):
        m, f = _func_with(
            lambda f, b: b.mul(b.add(b.i32(2), b.i32(3)), b.i32(4))
        )
        ConstantFoldPass().run(m)
        ret = f.entry.terminator
        assert isinstance(ret.operands[0], Constant)
        assert ret.operands[0].value == 20

    def test_x_plus_zero(self):
        m, f = _func_with(lambda f, b: b.add(f.args[0], b.i32(0)))
        ConstantFoldPass().run(m)
        assert f.entry.terminator.operands[0] is f.args[0]

    def test_x_times_zero(self):
        m, f = _func_with(lambda f, b: b.mul(f.args[0], b.i32(0)))
        ConstantFoldPass().run(m)
        op = f.entry.terminator.operands[0]
        assert isinstance(op, Constant) and op.value == 0

    def test_x_minus_x(self):
        m, f = _func_with(lambda f, b: b.sub(f.args[0], f.args[0]))
        ConstantFoldPass().run(m)
        op = f.entry.terminator.operands[0]
        assert isinstance(op, Constant) and op.value == 0

    def test_div_by_zero_not_folded(self):
        m, f = _func_with(lambda f, b: b.sdiv(b.i32(1), b.i32(0)))
        ConstantFoldPass().run(m)
        # the trapping division must survive
        assert any(i.opcode is Opcode.SDIV for i in f.instructions())

    def test_select_on_constant(self):
        m, f = _func_with(
            lambda f, b: b.select(b.true(), f.args[0], b.i32(9))
        )
        ConstantFoldPass().run(m)
        assert f.entry.terminator.operands[0] is f.args[0]

    def test_fadd_zero_preserved_value(self):
        m = Module("t")
        f = m.declare_function("f", F64, [("x", F64)])
        b = IRBuilder(f.add_block("entry"))
        b.ret(b.fadd(f.args[0], b.f64(0.0)))
        ConstantFoldPass().run(m)
        assert f.entry.terminator.operands[0] is f.args[0]
