"""Tests for deterministic RNG and stable hashing."""

import numpy as np

from repro.util.rng import DeterministicRng, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_distinguishes_parts(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_distinguishes_types(self):
        assert stable_hash(1) != stable_hash("1")

    def test_64_bit_range(self):
        h = stable_hash("anything")
        assert 0 <= h < 2**64


class TestDeterministicRng:
    def test_same_namespace_same_stream(self):
        a = DeterministicRng("ns", 7)
        b = DeterministicRng("ns", 7)
        assert list(a.integers(0, 100, size=10)) == list(b.integers(0, 100, size=10))

    def test_different_namespace_different_stream(self):
        a = DeterministicRng("ns1")
        b = DeterministicRng("ns2")
        assert list(a.integers(0, 10**9, size=8)) != list(
            b.integers(0, 10**9, size=8)
        )

    def test_different_seed_different_stream(self):
        a = DeterministicRng("ns", 0)
        b = DeterministicRng("ns", 1)
        assert list(a.integers(0, 10**9, size=8)) != list(
            b.integers(0, 10**9, size=8)
        )

    def test_child_is_independent_and_deterministic(self):
        parent1 = DeterministicRng("p", 3)
        parent2 = DeterministicRng("p", 3)
        c1 = parent1.child("sub")
        c2 = parent2.child("sub")
        assert list(c1.integers(0, 1000, size=5)) == list(c2.integers(0, 1000, size=5))

    def test_uniform_bounds(self):
        rng = DeterministicRng("u")
        values = rng.uniform(2.0, 3.0, size=100)
        assert np.all(values >= 2.0) and np.all(values < 3.0)

    def test_shuffle_in_place_deterministic(self):
        xs1 = list(range(20))
        xs2 = list(range(20))
        DeterministicRng("s").shuffle(xs1)
        DeterministicRng("s").shuffle(xs2)
        assert xs1 == xs2
        assert sorted(xs1) == list(range(20))

    def test_choice(self):
        rng = DeterministicRng("c")
        picked = rng.choice([1, 2, 3], size=50)
        assert set(int(p) for p in picked) <= {1, 2, 3}
