"""Tests for the benchmark application suite.

Compiles all 14 applications once (module-scoped) and checks behaviour on
the small datasets, keeping the suite fast while still executing each
application end-to-end.
"""

import pytest

from repro.apps import ALL_APPS, EMBEDDED_APPS, SCIENTIFIC_APPS, compile_app, get_app
from repro.ir.verifier import verify_module


@pytest.fixture(scope="module")
def compiled_apps():
    return {app.name: compile_app(app) for app in ALL_APPS}


class TestRegistry:
    def test_fourteen_apps_in_paper_order(self):
        assert len(ALL_APPS) == 14
        assert len(SCIENTIFIC_APPS) == 10
        assert len(EMBEDDED_APPS) == 4
        assert [a.name for a in SCIENTIFIC_APPS] == [
            "164.gzip",
            "179.art",
            "183.equake",
            "188.ammp",
            "429.mcf",
            "433.milc",
            "444.namd",
            "458.sjeng",
            "470.lbm",
            "473.astar",
        ]
        assert [a.name for a in EMBEDDED_APPS] == ["adpcm", "fft", "sor", "whetstone"]

    def test_lookup(self):
        assert get_app("fft").domain == "embedded"
        with pytest.raises(KeyError):
            get_app("999.nothing")

    def test_every_app_has_three_datasets(self):
        for app in ALL_APPS:
            assert len(app.datasets) >= 3
            assert app.datasets[0].name == "train"
            sizes = [ds.size for ds in app.datasets]
            assert len(set(sizes)) == len(sizes)  # distinct input sizes

    def test_dataset_lookup(self):
        app = get_app("sor")
        assert app.dataset("small").size < app.train.size
        with pytest.raises(KeyError):
            app.dataset("gigantic")


class TestCompilation:
    def test_all_apps_compile_and_verify(self, compiled_apps):
        for name, compiled in compiled_apps.items():
            verify_module(compiled.module)
            assert compiled.compilation.loc > 0
            assert compiled.compilation.basic_blocks > 10
            assert compiled.compilation.instructions > 100

    def test_scientific_apps_are_larger(self, compiled_apps):
        def avg(apps, attr):
            vals = [getattr(compiled_apps[a.name].compilation, attr) for a in apps]
            return sum(vals) / len(vals)

        assert avg(SCIENTIFIC_APPS, "loc") > avg(EMBEDDED_APPS, "loc")
        assert avg(SCIENTIFIC_APPS, "instructions") > avg(
            EMBEDDED_APPS, "instructions"
        )

    def test_main_entry_exists(self, compiled_apps):
        for compiled in compiled_apps.values():
            main = compiled.module.function("main")
            assert not main.is_declaration


class TestExecution:
    @pytest.mark.parametrize("app_name", [a.name for a in ALL_APPS])
    def test_small_dataset_runs_clean(self, compiled_apps, app_name):
        compiled = compiled_apps[app_name]
        result = compiled.run("small")
        assert result.return_value == 0
        assert result.output, f"{app_name} produced no output"

    @pytest.mark.parametrize("app_name", [a.name for a in ALL_APPS])
    def test_deterministic_across_runs(self, compiled_apps, app_name):
        compiled = compiled_apps[app_name]
        r1 = compiled.run("small")
        r2 = compiled.run("small")
        assert r1.output == r2.output
        assert r1.steps == r2.steps

    @pytest.mark.parametrize("app_name", [a.name for a in ALL_APPS])
    def test_input_size_changes_execution(self, compiled_apps, app_name):
        """Bigger datasets must execute more instructions (live code)."""
        compiled = compiled_apps[app_name]
        small = compiled.run("small")
        large = compiled.run("large")
        assert large.steps > small.steps

    def test_adpcm_reconstruction_quality(self, compiled_apps):
        result = compiled_apps["adpcm"].run("small")
        avg_err, max_err = result.output[0], result.output[1]
        assert 0 <= avg_err < 2000  # codec tracks the signal

    def test_fft_round_trip_error_small(self, compiled_apps):
        result = compiled_apps["fft"].run("small")
        rms = result.output[0]
        assert 0 <= rms < 1e-9  # forward+inverse recovers the signal

    def test_sor_converges(self, compiled_apps):
        result = compiled_apps["sor"].run("small")
        assert result.output[0] > 0.0

    def test_astar_finds_paths(self, compiled_apps):
        result = compiled_apps["473.astar"].run("small")
        found, total, expanded = result.output[:3]
        assert found >= 1
        assert total > 0 and expanded > 0

    def test_gzip_compresses(self, compiled_apps):
        result = compiled_apps["164.gzip"].run("small")
        emitted_bits, n_lit, n_match, ratio_x100 = result.output[:4]
        assert n_match > 0  # repeated phrases were found
        assert ratio_x100 > 100  # output smaller than input

    def test_mcf_pushes_flow(self, compiled_apps):
        result = compiled_apps["429.mcf"].run("small")
        flow, cost = result.output[:2]
        assert flow > 0 and cost > 0
