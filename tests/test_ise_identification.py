"""Tests for DFGs, feasibility and the three identification algorithms."""

import pytest

from repro.frontend import compile_source
from repro.ir import DataFlowGraph
from repro.ir.opcodes import Opcode
from repro.ise import (
    FeasibilityAnalysis,
    MaxMisoIdentifier,
    SingleCutIdentifier,
    UnionMisoIdentifier,
    is_feasible_instruction,
)
from repro.vm import Interpreter


@pytest.fixture
def hot_block(fp_kernel, fp_kernel_profile):
    """The hottest block of the FP kernel (the inner-loop body)."""
    module, profile, _ = fp_kernel_profile
    from repro.vm.costmodel import PPC405_COST_MODEL

    shares = profile.block_time_shares(module, PPC405_COST_MODEL)
    key = max(shares, key=shares.get)
    func = module.function(key[0])
    return key[0], func.block_named(key[1])


class TestDataFlowGraph:
    def test_nodes_exclude_phis_and_terminator(self, hot_block):
        fname, block = hot_block
        dfg = DataFlowGraph(block)
        for node in dfg.nodes:
            assert node.opcode is not Opcode.PHI
            assert not node.is_terminator

    def test_edges_follow_def_use(self, hot_block):
        fname, block = hot_block
        dfg = DataFlowGraph(block)
        for src, dst in dfg.graph.edges:
            assert src in dst.operands

    def test_inputs_exclude_constants(self, hot_block):
        from repro.ir.values import Constant

        fname, block = hot_block
        dfg = DataFlowGraph(block)
        nodes = set(dfg.nodes)
        for value in dfg.inputs_of(nodes):
            assert not isinstance(value, Constant)

    def test_whole_body_convex(self, hot_block):
        fname, block = hot_block
        dfg = DataFlowGraph(block)
        assert dfg.is_convex(set(dfg.nodes))

    def test_nonconvex_detected(self):
        src = """
int main() {
    int a = dataset_size();
    int b = a * 3;        // n1
    int c = b + 7;        // n2 (uses n1)
    int d = b * c;        // n3 (uses n1 and n2)
    return d;
}
"""
        module = compile_source(src, "cvx").module
        func = module.function("main")
        block = func.blocks[0]
        dfg = DataFlowGraph(block)
        muls = [n for n in dfg.nodes if n.opcode is Opcode.MUL]
        adds = [n for n in dfg.nodes if n.opcode is Opcode.ADD]
        assert len(muls) == 2 and len(adds) == 1
        # {b*3, b*c} without the add in between is non-convex
        assert not dfg.is_convex(set(muls))
        assert dfg.is_convex(set(muls) | set(adds))

    def test_topological_order_respects_deps(self, hot_block):
        fname, block = hot_block
        dfg = DataFlowGraph(block)
        order = dfg.topological_order()
        pos = {id(n): i for i, n in enumerate(order)}
        for src, dst in dfg.graph.edges:
            assert pos[id(src)] < pos[id(dst)]

    def test_critical_path_positive_monotone(self, hot_block):
        fname, block = hot_block
        dfg = DataFlowGraph(block)
        nodes = set(dfg.nodes)
        cp1 = dfg.critical_path_length(nodes, lambda i: 1.0)
        cp2 = dfg.critical_path_length(nodes, lambda i: 2.0)
        assert cp2 == pytest.approx(2 * cp1)
        assert cp1 >= 1.0


class TestFeasibility:
    def test_memory_and_control_infeasible(self, hot_block):
        fname, block = hot_block
        analysis = FeasibilityAnalysis.of_block(block)
        for instr in analysis.infeasible:
            assert instr.opcode in (
                Opcode.LOAD,
                Opcode.STORE,
                Opcode.GEP,
                Opcode.CALL,
                Opcode.PHI,
                Opcode.BR,
                Opcode.CONDBR,
                Opcode.RET,
                Opcode.ALLOCA,
            ) or not is_feasible_instruction(instr)
        # GEP is actually feasible (pure address arithmetic)
        assert all(
            i.opcode is not Opcode.LOAD for i in analysis.feasible
        )

    def test_arithmetic_feasible(self, hot_block):
        fname, block = hot_block
        analysis = FeasibilityAnalysis.of_block(block)
        feasible_ops = {i.opcode for i in analysis.feasible}
        assert Opcode.FMUL in feasible_ops or Opcode.FADD in feasible_ops

    def test_fraction_in_range(self, hot_block):
        fname, block = hot_block
        analysis = FeasibilityAnalysis.of_block(block)
        assert 0.0 < analysis.feasible_fraction < 1.0


def _check_candidates(candidates, dfg_required=True):
    for cand in candidates:
        # feasibility
        assert all(is_feasible_instruction(n) for n in cand.nodes)
        # convexity
        assert cand.dfg.is_convex(set(cand.nodes))
        assert cand.size >= 2


class TestMaxMiso:
    def test_candidates_single_output(self, hot_block):
        fname, block = hot_block
        candidates = MaxMisoIdentifier().identify_block(fname, block)
        assert candidates
        _check_candidates(candidates)
        for cand in candidates:
            assert len(cand.outputs) == 1

    def test_candidates_disjoint(self, hot_block):
        fname, block = hot_block
        candidates = MaxMisoIdentifier(min_size=1).identify_block(fname, block)
        seen = set()
        for cand in candidates:
            for node in cand.nodes:
                assert id(node) not in seen
                seen.add(id(node))

    def test_partition_covers_feasible_nodes(self, hot_block):
        fname, block = hot_block
        candidates = MaxMisoIdentifier(min_size=1).identify_block(fname, block)
        covered = {id(n) for c in candidates for n in c.nodes}
        analysis = FeasibilityAnalysis.of_block(block)
        assert covered == {id(n) for n in analysis.feasible}

    def test_min_size_respected(self, hot_block):
        fname, block = hot_block
        for cand in MaxMisoIdentifier(min_size=3).identify_block(fname, block):
            assert cand.size >= 3

    def test_deterministic(self, hot_block):
        fname, block = hot_block
        c1 = MaxMisoIdentifier().identify_block(fname, block)
        c2 = MaxMisoIdentifier().identify_block(fname, block)
        assert [c.signature for c in c1] == [c.signature for c in c2]


class TestSingleCut:
    def test_io_constraints_respected(self, hot_block):
        fname, block = hot_block
        ident = SingleCutIdentifier(max_inputs=3, max_outputs=1)
        for cand in ident.identify_block(fname, block):
            assert len(cand.inputs) <= 3
            assert len(cand.outputs) <= 1
            assert cand.dfg.is_convex(set(cand.nodes))

    def test_non_overlapping_cover(self, hot_block):
        fname, block = hot_block
        candidates = SingleCutIdentifier().identify_block(fname, block)
        seen = set()
        for cand in candidates:
            for node in cand.nodes:
                assert id(node) not in seen
                seen.add(id(node))

    def test_budget_bounds_search(self, hot_block):
        fname, block = hot_block
        small = SingleCutIdentifier(search_budget=50)
        # must terminate quickly and still be valid
        candidates = small.identify_block(fname, block)
        _check_candidates(candidates) if candidates else None


class TestUnionMiso:
    def test_respects_io_limits(self, hot_block):
        fname, block = hot_block
        ident = UnionMisoIdentifier(max_inputs=4, max_outputs=2)
        for cand in ident.identify_block(fname, block):
            assert len(cand.inputs) <= 4
            assert len(cand.outputs) <= 2
            assert cand.dfg.is_convex(set(cand.nodes))

    def test_merging_reduces_or_keeps_candidate_count(self, hot_block):
        fname, block = hot_block
        base = MaxMisoIdentifier(min_size=1).identify_block(fname, block)
        merged = UnionMisoIdentifier(min_size=1).identify_block(fname, block)
        assert len(merged) <= len(base)


class TestSignature:
    def test_structurally_equal_candidates_share_signature(self):
        # Two functions with structurally identical expression trees (CSE
        # cannot merge across functions); their candidates must map to the
        # same bitstream-cache signature.
        src = """
double f(double a, double b) { return (a + b) * 2.0 - b; }
double g(double x, double y) { return (x + y) * 2.0 - y; }
int main() {
    double a = (double)dataset_size();
    print_f64(f(a, 1.0) + g(a, 2.0));
    return 0;
}
"""
        from repro.frontend.compiler import compile_source as cs

        module = cs(src, "sig", opt_level=1).module  # no inlining at O1
        cands = []
        for fname in ("f", "g"):
            func = module.function(fname)
            for block in func.blocks:
                cands += MaxMisoIdentifier().identify_block(
                    fname, block, len(cands)
                )
        sigs = [c.signature for c in cands]
        assert len(sigs) == 2
        assert sigs[0] == sigs[1]

    def test_different_shapes_different_signature(self):
        src = """
double f(double a, double b) { return (a + b) * 2.0 - b; }
double g(double x, double y) { return (x - y) * 2.0 + y; }
int main() {
    double a = (double)dataset_size();
    print_f64(f(a, 1.0) + g(a, 2.0));
    return 0;
}
"""
        from repro.frontend.compiler import compile_source as cs

        module = cs(src, "sig2", opt_level=1).module
        cands = []
        for fname in ("f", "g"):
            func = module.function(fname)
            for block in func.blocks:
                cands += MaxMisoIdentifier().identify_block(
                    fname, block, len(cands)
                )
        assert len(cands) == 2
        assert cands[0].signature != cands[1].signature
