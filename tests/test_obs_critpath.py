"""Tests for the critical-path analyzer and the what-if replay engine:

- :mod:`repro.obs.critpath` — trace -> specialization DAG (Figure 2), CPM
  on both clocks, Table III constant-stage summary, break-even headroom;
- :mod:`repro.obs.whatif` — knob validation, cache/speedup/worker replay,
  Table IV grid regeneration with the analytic cross-check.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.critpath import (
    RunReplay,
    STAGE_KEYS,
    analyze_critical_path,
    critpath_block,
    render_critical_path,
    render_table3_summary,
    table3_summary,
)
from repro.obs.export import SpanRecord
from repro.obs.ledger import RunLedger
from repro.obs.whatif import (
    WhatIfKnobs,
    app_overhead_seconds,
    candidate_chain_seconds,
    check_grids,
    whatif_break_even,
)


def rec(name, sid, parent, t0, t1, **attrs):
    return SpanRecord(
        name=name, span_id=sid, parent_id=parent, t0=t0, t1=t1, attrs=attrs
    )


#: Virtual stage split of the fully observed candidate (sums to 70).
STAGE_SPLIT = {
    "cad.c2v": 2.0,
    "cad.syntax": 3.0,
    "cad.synthesis": 5.0,
    "cad.translate": 4.0,
    "cad.map": 6.0,
    "cad.par": 10.0,
    "cad.bitgen": 40.0,
}


def _hand_built_trace():
    """One app, three candidates: observed, shared (no stage spans), failed.

    Known CPM facts on the virtual clock (Figure 2 DAG):

    - serial schedule = 5 (search) + 70 + 0.5 (c0) + 35 + 0.5 (c1) = 111
    - unbounded-worker makespan = 5 + 70 + 0.5 (c0 chain) + 0.5 (c1's
      ICAP serialized after c0's) = 76
    - the critical path runs search -> c0's seven stages -> both ICAPs.
    """
    records = [
        rec("analysis.run", 1, None, 0.0, 100.0, app="alpha"),
        rec("asip_sp.run", 2, 1, 0.0, 100.0, module="alpha"),
        rec("search", 3, 2, 0.0, 10.0, virtual_seconds=5.0),
        rec(
            "asip_sp.candidate", 4, 2, 10.0, 50.0,
            candidate="k0", custom_id=0, virtual_seconds=70.0,
        ),
        rec("cad.implement", 5, 4, 10.0, 45.0, candidate="k0"),
    ]
    sid = 6
    t = 10.0
    for name, virt in STAGE_SPLIT.items():
        records.append(
            rec(name, sid, 5, t, t + 1.0, virtual_seconds=virt)
        )
        sid += 1
        t += 1.0
    records += [
        rec("icap.reconfigure", 13, 4, 49.0, 49.0, virtual_seconds=0.5),
        rec(
            "asip_sp.candidate", 14, 2, 50.0, 52.0,
            candidate="k1", custom_id=1, shared=True, virtual_seconds=35.0,
        ),
        rec("icap.reconfigure", 15, 14, 52.0, 52.0, virtual_seconds=0.5),
        rec(
            "asip_sp.candidate", 16, 2, 52.0, 53.0,
            candidate="k2", custom_id=2, failed=True,
        ),
    ]
    return records


@pytest.fixture
def replay():
    return RunReplay.from_records(_hand_built_trace())


class TestRunReplay:
    def test_reconstruction(self, replay):
        assert replay.app_names == ["alpha"]
        app = replay.apps[0]
        assert app.search_virtual == pytest.approx(5.0)
        assert app.search_real == pytest.approx(10.0)
        assert app.failed == 1
        assert [c.custom_id for c in app.candidates] == [0, 1]
        c0, c1 = app.candidates
        assert c0.virtual_total == pytest.approx(70.0)
        assert not c0.split_estimated
        assert c0.stage_virtual["bitgen"] == pytest.approx(40.0)
        assert c1.shared and not c0.shared
        assert app.overhead_virtual == pytest.approx(111.0)

    def test_shared_candidate_split_is_backfilled(self, replay):
        c1 = replay.apps[0].candidates[1]
        assert c1.split_estimated
        # Backfilled from c0's shares: bitgen = 40/70 * 35.
        assert c1.stage_virtual["bitgen"] == pytest.approx(20.0)
        assert sum(c1.stage_virtual.values()) == pytest.approx(35.0)
        assert all(v == 0.0 for v in c1.stage_real.values())

    def test_reparented_implement_span_still_matches(self):
        # jobs>1 prefetch reparents cad.implement under asip_sp.run; the
        # split must still attach to the candidate via the key attribute.
        records = [
            r if r.span_id != 5 else
            rec("cad.implement", 5, 2, 10.0, 45.0, candidate="k0")
            for r in _hand_built_trace()
        ]
        replay = RunReplay.from_records(records)
        c0 = replay.apps[0].candidates[0]
        assert not c0.split_estimated
        assert c0.stage_virtual["bitgen"] == pytest.approx(40.0)

    def test_empty_trace(self):
        assert RunReplay.from_records([]).apps == []


class TestCriticalPath:
    def test_known_path_virtual(self, replay):
        analysis = analyze_critical_path(replay, "virtual")
        assert analysis.serial_seconds == pytest.approx(111.0)
        assert analysis.makespan == pytest.approx(76.0)
        labels = [n.label for n in analysis.path]
        assert labels[0] == "alpha:Search"
        assert labels[-2:] == ["alpha:c0:ICAP", "alpha:c1:ICAP"]
        # The whole c0 stage chain is on the path; c1's chain is not.
        assert "alpha:c0:Bitgen" in labels
        assert "alpha:c1:Bitgen" not in labels
        assert analysis.dominant_stage == "bitgen"
        assert analysis.path_seconds == pytest.approx(76.0)

    def test_slack_of_off_path_chain(self, replay):
        analysis = analyze_critical_path(replay, "virtual")
        by_label = {n.label: n for n in analysis.nodes}
        # c1's chain finishes at 40 but only gates its ICAP at 75.5.
        assert by_label["alpha:c1:Bitgen"].slack == pytest.approx(35.5)
        assert by_label["alpha:c0:Bitgen"].slack == pytest.approx(0.0)
        summary = analysis.stage_summary()
        assert summary["bitgen"]["total"] == pytest.approx(60.0)
        assert summary["bitgen"]["on_path"] == 1
        assert summary["icap"]["on_path"] == 2

    def test_real_clock_uses_measured_durations(self, replay):
        analysis = analyze_critical_path(replay, "real")
        # Search is the heaviest real node (10 s measured).
        assert analysis.dominant_stage == "search"
        with pytest.raises(ValueError, match="unknown clock"):
            analyze_critical_path(replay, "cpu")

    def test_render_names_makespan_and_dominant(self, replay):
        text = render_critical_path(analyze_critical_path(replay, "virtual"))
        assert "unbounded CAD workers" in text
        assert "dominated by Bitgen" in text
        assert "Per-stage slack (virtual clock)" in text

    def test_table3_summary_covers_constant_stages_only(self, replay):
        summary = table3_summary(replay)
        # Only the observed chain counts; constant = 2+3+5+4+40.
        assert summary["candidates"] == 1
        assert summary["constant_sum"] == pytest.approx(54.0)
        assert summary["dominant"] == "bitgen"
        assert summary["bitgen_share"] == pytest.approx(40.0 / 54.0)
        assert "Bitgen-dominated" in render_table3_summary(summary)

    def test_table3_summary_none_without_observed_chains(self):
        assert table3_summary(RunReplay()) is None

    def test_block_shape(self, replay):
        virtual = analyze_critical_path(replay, "virtual")
        real = analyze_critical_path(replay, "real")
        block = critpath_block(virtual, real, table3=table3_summary(replay))
        assert block["virtual"]["makespan"] == pytest.approx(76.0)
        assert block["virtual"]["dominant_stage"] == "bitgen"
        assert set(block["virtual"]["stages"]) >= set(STAGE_KEYS)
        assert block["table3"]["bitgen_share"] == pytest.approx(40.0 / 54.0)
        json.dumps(block)  # must be manifest-serializable


class TestWhatIfKnobs:
    def test_validation(self):
        with pytest.raises(ValueError, match="cache hit"):
            WhatIfKnobs(cache_hit_pct=101.0)
        with pytest.raises(ValueError, match="unknown CAD stage"):
            WhatIfKnobs(stage_speedup_pct=(("bogus", 10.0),))
        with pytest.raises(ValueError, match="workers"):
            WhatIfKnobs(workers=0)
        assert "2 workers" in WhatIfKnobs(workers=2).describe()

    def test_chain_seconds_under_speedups(self, replay):
        c0 = replay.apps[0].candidates[0]
        assert candidate_chain_seconds(c0, WhatIfKnobs()) == pytest.approx(70.0)
        assert candidate_chain_seconds(
            c0, WhatIfKnobs(cad_speedup_pct=50.0)
        ) == pytest.approx(35.0)
        # Halving only Bitgen removes 20 of its 40 seconds.
        assert candidate_chain_seconds(
            c0, WhatIfKnobs(stage_speedup_pct=(("bitgen", 50.0),))
        ) == pytest.approx(50.0)


class TestWhatIfReplay:
    def test_identity_point_matches_recorded_overhead(self, replay):
        app = replay.apps[0]
        neutral = app_overhead_seconds(app, WhatIfKnobs())
        assert neutral == pytest.approx(app.overhead_virtual)
        assert neutral == pytest.approx(111.0)

    def test_workers_overlap_candidate_chains(self, replay):
        app = replay.apps[0]
        # Two workers run the 70 s and 35 s chains concurrently.
        assert app_overhead_seconds(
            app, WhatIfKnobs(workers=2)
        ) == pytest.approx(5.0 + 70.0 + 1.0)

    def test_full_cache_removes_every_chain(self, replay):
        app = replay.apps[0]
        assert app_overhead_seconds(
            app, WhatIfKnobs(cache_hit_pct=100.0)
        ) == pytest.approx(5.0 + 1.0)

    def test_partial_cache_is_bounded_by_extremes(self, replay):
        app = replay.apps[0]
        partial = app_overhead_seconds(app, WhatIfKnobs(cache_hit_pct=50.0))
        assert 6.0 <= partial <= 111.0


@pytest.fixture(scope="module")
def fft_run(tmp_path_factory):
    """One ledger-recorded `analyze fft` run plus its replay and inputs."""
    from repro.cli import main
    from repro.obs.export import read_jsonl
    from repro.obs.whatif import breakeven_inputs

    ledger_dir = tmp_path_factory.mktemp("ledger")
    assert main(["analyze", "fft", "--ledger", str(ledger_dir)]) == 0
    ledger = RunLedger(ledger_dir)
    run_dir = ledger.run_dir(ledger.resolve("latest"))
    records = read_jsonl(run_dir / "trace.jsonl")
    replay = RunReplay.from_records(records)
    return {
        "ledger_dir": ledger_dir,
        "ledger": ledger,
        "replay": replay,
        "inputs": breakeven_inputs(replay.app_names),
    }


class TestRecordedRunWhatIf:
    def test_identity_reproduces_recorded_break_even(self, fft_run):
        manifest = fft_run["ledger"].load(fft_run["ledger"].resolve("latest"))
        recorded = manifest["scalars"]["per_app"]["fft"]["break_even_seconds"]
        result = whatif_break_even(
            fft_run["replay"], fft_run["inputs"], WhatIfKnobs()
        )
        assert len(result.apps) == 1
        assert result.apps[0].break_even == pytest.approx(recorded, rel=1e-5)
        assert result.apps[0].overhead == pytest.approx(
            fft_run["replay"].apps[0].overhead_virtual
        )

    def test_grid_matches_analytic_within_tolerance(self, fft_run):
        from repro.obs.whatif import analytic_grid, whatif_grid

        trace = whatif_grid(fft_run["replay"], fft_run["inputs"])
        analytic = analytic_grid(fft_run["inputs"])
        check = check_grids(trace, analytic, tolerance=0.05)
        assert len(check.cells) == 40
        assert check.ok, [c.key for c in check.flagged]
        # The 1-worker uniform-speedup replay shares the analytic cache
        # protocol bit for bit, so agreement is far tighter than 5%.
        assert max(c.rel_error for c in check.cells) < 1e-3

    def test_axis_mismatch_rejected(self, fft_run):
        from repro.obs.whatif import analytic_grid, whatif_grid

        trace = whatif_grid(
            fft_run["replay"], fft_run["inputs"], hit_rates=[0, 50]
        )
        analytic = analytic_grid(fft_run["inputs"], hit_rates=[0, 90])
        with pytest.raises(ValueError, match="different axes"):
            check_grids(trace, analytic)

    def test_headroom_baseline_matches_recorded(self, fft_run):
        from repro.obs.critpath import headroom_table

        manifest = fft_run["ledger"].load(fft_run["ledger"].resolve("latest"))
        recorded = manifest["scalars"]["per_app"]["fft"]["break_even_seconds"]
        table = headroom_table(fft_run["replay"], fft_run["inputs"])
        assert table.baseline_break_even == pytest.approx(recorded, rel=1e-5)
        bitgen = table.rows["bitgen"]
        # A faster Bitgen can only lower (or hold) break-even, and an
        # infinite speedup is at least as good as any finite one.
        assert bitgen["break_even"]["2x"] <= table.baseline_break_even
        assert bitgen["break_even"]["inf"] <= bitgen["break_even"]["2x"]
        assert "Break-even headroom" in table.render()


class TestCliEndToEnd:
    def test_critpath_latest_names_bitgen_dominance(self, fft_run, capsys):
        from repro.cli import main

        status = main(
            ["critpath", "latest", "--ledger", str(fft_run["ledger_dir"])]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "critical path (virtual clock)" in out
        # Table III consistency line (constant stages, ~85% Bitgen).
        assert "Bitgen-dominated" in out
        assert "Break-even headroom" in out
        manifest = fft_run["ledger"].load(fft_run["ledger"].resolve("latest"))
        block = manifest["critpath"]
        assert block["table3"]["bitgen_share"] == pytest.approx(0.85, abs=0.02)
        assert block["virtual"]["makespan"] <= block["virtual"]["serial_seconds"]

    def test_whatif_grid_cli_attaches_block(self, fft_run, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "grid.json"
        status = main(
            [
                "whatif", "latest", "--grid",
                "--out", str(out_path),
                "--ledger", str(fft_run["ledger_dir"]),
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "identity check: replayed baseline matches" in out
        manifest = fft_run["ledger"].load(fft_run["ledger"].resolve("latest"))
        block = manifest["whatif"]
        assert block["check"]["checked"] == 40
        assert block["check"]["flagged"] == 0
        assert len(block["grid"]["cells"]) == 40
        artifact = json.loads(out_path.read_text())
        assert len(artifact["cells"]) == 40

    def test_whatif_knobs_scenario(self, fft_run, capsys):
        from repro.cli import main

        status = main(
            [
                "whatif", "latest",
                "--cad-speedup", "bitgen=50",
                "--cache-hit", "30",
                "--workers", "4",
                "--no-save",
                "--ledger", str(fft_run["ledger_dir"]),
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "cache 30%" in out and "4 workers" in out

    def test_bad_speedup_spec_is_an_error(self, fft_run, capsys):
        from repro.cli import main

        status = main(
            [
                "whatif", "latest", "--cad-speedup", "bogus=50",
                "--ledger", str(fft_run["ledger_dir"]),
            ]
        )
        assert status == 2

    def test_empty_ledger_is_a_resolve_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["critpath", "latest", "--ledger", str(tmp_path)]) == 2
        assert "--ledger" in capsys.readouterr().err
