"""Hypothesis property tests on ISE, CAD and cost-model invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.ise import MaxMisoIdentifier, is_feasible_instruction
from repro.ir import DataFlowGraph
from repro.pivpav import PivPavEstimator
from repro.util.timefmt import format_dhms, parse_hms
from repro.vm import Interpreter
from repro.vm.patcher import BinaryPatcher
from repro.ir.verifier import verify_module


@st.composite
def fp_statements(draw):
    """1-4 assignment statements over double locals x, y, z."""
    n = draw(st.integers(min_value=1, max_value=4))
    stmts = []
    for _ in range(n):
        target = draw(st.sampled_from(["x", "y", "z"]))
        t1 = draw(st.sampled_from(["x", "y", "z", "0.5", "2.0"]))
        t2 = draw(st.sampled_from(["x", "y", "z", "1.5"]))
        t3 = draw(st.sampled_from(["x", "y", "z"]))
        op1 = draw(st.sampled_from(["+", "-", "*"]))
        op2 = draw(st.sampled_from(["+", "-", "*"]))
        stmts.append(f"{target} = ({t1} {op1} {t2}) {op2} {t3};")
    return "\n        ".join(stmts)


def _compile_kernel(body: str):
    src = f"""
double out = 0.0;
int main() {{
    double x = 1.25; double y = -0.75; double z = 0.5;
    for (int i = 0; i < 40; i++) {{
        {body}
        x += 0.001;
    }}
    out = x + y + z;
    print_f64(out);
    return 0;
}}
"""
    return compile_source(src, "propk").module


class TestMaxMisoProperties:
    @settings(max_examples=25, deadline=None)
    @given(body=fp_statements())
    def test_candidates_always_convex_feasible_single_output(self, body):
        module = _compile_kernel(body)
        for func in module.defined_functions():
            for block in func.blocks:
                for cand in MaxMisoIdentifier().identify_block(
                    func.name, block
                ):
                    assert cand.dfg.is_convex(set(cand.nodes))
                    assert all(is_feasible_instruction(n) for n in cand.nodes)
                    assert len(cand.outputs) == 1
                    assert cand.size >= 2

    @settings(max_examples=25, deadline=None)
    @given(body=fp_statements())
    def test_maxmiso_partition_disjoint(self, body):
        module = _compile_kernel(body)
        for func in module.defined_functions():
            for block in func.blocks:
                seen: set[int] = set()
                for cand in MaxMisoIdentifier(min_size=1).identify_block(
                    func.name, block
                ):
                    for node in cand.nodes:
                        assert id(node) not in seen
                        seen.add(id(node))

    @settings(max_examples=15, deadline=None)
    @given(body=fp_statements())
    def test_patched_program_equivalent(self, body):
        module = _compile_kernel(body)
        baseline = Interpreter(module).run("main")

        candidates = []
        for func in module.defined_functions():
            for block in func.blocks:
                candidates += MaxMisoIdentifier().identify_block(
                    func.name, block, len(candidates)
                )
        if not candidates:
            return
        patcher = BinaryPatcher()
        patcher.patch_module(module, candidates)
        verify_module(module)
        interp = Interpreter(module)
        patcher.install(interp)
        patched = interp.run("main")
        assert len(patched.output) == len(baseline.output)
        for got, want in zip(patched.output, baseline.output):
            if isinstance(want, float) and math.isnan(want):
                assert isinstance(got, float) and math.isnan(got)
            else:
                assert got == want


class TestEstimatorProperties:
    @settings(max_examples=15, deadline=None)
    @given(body=fp_statements())
    def test_estimates_positive_and_consistent(self, body):
        module = _compile_kernel(body)
        estimator = PivPavEstimator()
        for func in module.defined_functions():
            for block in func.blocks:
                for cand in MaxMisoIdentifier().identify_block(
                    func.name, block
                ):
                    est = estimator.estimate(cand)
                    assert est.sw_cycles > 0
                    assert est.hw_cycles >= 1
                    assert est.hw_latency_ns >= 0
                    assert est.luts >= 0 and est.dsp48 >= 0


class TestTimeFormatProperties:
    @given(seconds=st.integers(min_value=0, max_value=10**7))
    def test_dhms_round_trip(self, seconds):
        assert parse_hms(format_dhms(seconds)) == seconds


class TestCadTimingProperties:
    @given(
        luts=st.integers(min_value=1, max_value=6000),
        dsps=st.integers(min_value=0, max_value=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_stage_times_positive_and_bounded(self, luts, dsps):
        from repro.fpga import CadTimingModel

        model = CadTimingModel()
        t = model.stage_times(f"e_{luts}_{dsps}", luts, dsps)
        for value in (t.c2v, t.syn, t.xst, t.tra, t.map, t.par, t.bitgen):
            assert value > 0
        assert t.map <= model.map_max * 1.2
        assert t.par <= model.par_max * 1.01
        assert t.total == pytest.approx(t.constant_sum + t.map + t.par)


class TestCacheSimulationProperties:
    @given(hit=st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_effective_cost_between_zero_and_full(self, hit, shared_report):
        from repro.core.cache import CacheSimulation

        sim = CacheSimulation()
        full = sim.effective_toolflow_seconds(shared_report, 0.0)
        eff = sim.effective_toolflow_seconds(shared_report, float(hit))
        assert 0.0 <= eff <= full + 1e-9


@pytest.fixture(scope="module")
def shared_report():
    src = """
double a[32]; double b[32];
int main() {
    for (int i = 0; i < 32; i++) { a[i] = 0.1 * (double)i; b[i] = 2.0; }
    double s = 0.0;
    for (int it = 0; it < 8; it++)
        for (int i = 0; i < 31; i++) s += a[i] * b[i] + a[i + 1] * 0.5;
    print_f64(s);
    return 0;
}
"""
    from repro.core import AsipSpecializationProcess

    module = compile_source(src, "cacheprop").module
    profile = Interpreter(module).run("main").profile
    return AsipSpecializationProcess().run(module, profile)
