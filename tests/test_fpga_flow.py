"""Tests for the FPGA CAD tool flow: syntax, synthesis, map, place, route,
bitgen, and the calibrated timing model."""

import pytest

from repro.fpga import (
    CadToolFlow,
    CadTimingModel,
    Mapper,
    Placer,
    Router,
    VIRTEX4_FX100,
    VhdlSyntaxChecker,
    VhdlSyntaxError,
)
from repro.fpga.device import VIRTEX4_FX20
from repro.fpga.placer import PlacementError
from repro.ise import CandidateSearch


@pytest.fixture(scope="module")
def implementation(request):
    """One full CAD implementation of the FP kernel's best candidate."""
    from repro.frontend import compile_source
    from repro.vm import Interpreter

    src = """
double a[64]; double b[64]; double c[64];
int main() {
    for (int i = 0; i < 64; i++) { a[i] = 0.5 * (double)i; b[i] = 1.5; }
    double s = 0.0;
    for (int it = 0; it < 10; it++)
        for (int i = 0; i < 63; i++) {
            c[i] = a[i] * b[i] + a[i + 1] * 0.25 - b[i] / 3.0;
            s += c[i] * c[i];
        }
    print_f64(s);
    return 0;
}
"""
    comp = compile_source(src, "cadkernel")
    result = Interpreter(comp.module).run("main")
    search = CandidateSearch().run(comp.module, result.profile)
    flow = CadToolFlow()
    return flow.implement(search.selected[0].candidate)


class TestSyntaxChecker:
    GOOD = """
library ieee;
use ieee.std_logic_1164.all;
entity tiny is
  port (
    clk : in std_logic;
    a : in std_logic_vector(31 downto 0);
    q : out std_logic_vector(31 downto 0)
  );
end entity tiny;
architecture structural of tiny is
  component add_i32
    port (
      clk : in std_logic;
      a0 : in std_logic_vector(31 downto 0);
      a1 : in std_logic_vector(31 downto 0);
      q : out std_logic_vector(31 downto 0)
    );
  end component;
  signal s0 : std_logic_vector(31 downto 0);
  signal k0 : std_logic_vector(31 downto 0) := x"0000002a";
begin
  u0 : add_i32
    port map (
      clk => clk,
      a0 => a,
      a1 => k0,
      q => s0
    );
  q <= s0;
end architecture structural;
"""

    def test_accepts_wellformed(self):
        design = VhdlSyntaxChecker().check(self.GOOD)
        assert design.entity == "tiny"
        assert len(design.instances) == 1
        assert design.signals == {"s0": 32, "k0": 32}

    @pytest.mark.parametrize(
        "mutation,pattern",
        [
            (("entity tiny is", "entity oops is"), "does not match"),
            (("a1 => k0", "a1 => nosuch"), "not a signal"),
            (("u0 : add_i32", "u0 : mystery"), "undeclared component"),
            (('x"0000002a"', 'x"2a"'), "does not match width"),
            (("q <= s0;", "q <= phantom;"), "unknown source"),
            (("a0 => a,\n", ""), "unconnected"),
        ],
    )
    def test_rejects_mutations(self, mutation, pattern):
        old, new = mutation
        bad = self.GOOD.replace(old, new)
        assert bad != self.GOOD
        with pytest.raises(VhdlSyntaxError, match=pattern):
            VhdlSyntaxChecker().check(bad)


class TestFlowArtifacts:
    def test_mapping_packs_primitives(self, implementation):
        mapped = implementation.mapped
        assert mapped.cell_count > 0
        assert mapped.lut_count > 0
        # LUT+FF pairs mean fewer cells than primitives
        total_prims = sum(len(c.members) for c in mapped.cells)
        assert total_prims >= mapped.cell_count

    def test_placement_legal(self, implementation):
        region = VIRTEX4_FX100.region
        placement = implementation.placement
        mapped = implementation.mapped
        assert len(placement.locations) == mapped.cell_count
        for col, row in placement.locations.values():
            assert 0 <= col < region.cols
            assert 0 <= row < region.rows

    def test_placement_improves_wirelength(self, implementation):
        p = implementation.placement
        assert p.final_wirelength <= p.initial_wirelength
        assert p.moves_accepted > 0

    def test_routing_feasible(self, implementation):
        routed = implementation.routed
        assert routed.max_channel_utilization < 1.5
        assert routed.total_wirelength > 0
        assert routed.critical_delay_ns > 0

    def test_bitstream_properties(self, implementation):
        bs = implementation.bitstream
        device = VIRTEX4_FX100
        assert bs.column_count == device.region.cols
        assert bs.frame_count == device.region.cols * device.frames_per_clb_col
        assert bs.size_bytes > 1_000_000  # megabyte-scale partial bitstream
        assert bs.data.startswith(b"\xaa\x99\x55\x66")

    def test_bitstream_deterministic(self, implementation):
        from repro.fpga.bitgen import BitstreamGenerator

        again = BitstreamGenerator().generate(
            implementation.vhdl.entity_name,
            implementation.mapped,
            implementation.placement,
            VIRTEX4_FX100,
        )
        assert again.checksum == implementation.bitstream.checksum

    def test_design_too_large_rejected(self):
        from repro.fpga.techmap import MappedCell, MappedDesign

        region = VIRTEX4_FX20.region
        too_many = region.cell_capacity + 1
        design = MappedDesign(
            cells=[MappedCell(i, "SLICE") for i in range(too_many)],
            nets=[],
            lut_count=too_many,
            ff_count=0,
            dsp_count=0,
            bram_count=0,
        )
        with pytest.raises(PlacementError):
            Placer().place(design, region)


class TestTimingModel:
    def test_constant_stage_means_calibrated(self):
        model = CadTimingModel()
        times = [
            model.stage_times(f"entity_{i}", lut_count=30) for i in range(60)
        ]

        def mean(attr):
            return sum(getattr(t, attr) for t in times) / len(times)

        assert mean("c2v") == pytest.approx(3.22, abs=0.1)
        assert mean("syn") == pytest.approx(4.22, abs=0.1)
        assert mean("xst") == pytest.approx(10.60, rel=0.05)
        assert mean("tra") == pytest.approx(8.99, rel=0.1)
        assert mean("bitgen") == pytest.approx(151.0, rel=0.02)

    def test_map_range_respected(self):
        model = CadTimingModel()
        small = model.stage_times("tiny", lut_count=4)
        large = model.stage_times("huge", lut_count=5000, dsp_count=8)
        assert small.map < 60
        assert large.map <= model.map_max * 1.05
        assert large.map > small.map

    def test_par_to_map_ratio_range(self):
        model = CadTimingModel()
        for luts in (4, 60, 200, 400):
            t = model.stage_times(f"e{luts}", lut_count=luts)
            ratio = t.par / t.map
            assert 1.2 <= ratio <= 2.6

    def test_bitgen_dominates_constant_cost(self):
        model = CadTimingModel()
        t = model.stage_times("x", lut_count=10)
        assert t.bitgen / t.constant_sum > 0.8

    def test_smaller_device_faster_constants(self):
        big = CadTimingModel(device=VIRTEX4_FX100)
        small = CadTimingModel(device=VIRTEX4_FX20)
        tb = big.stage_times("e", lut_count=10)
        ts = small.stage_times("e", lut_count=10)
        assert ts.bitgen < tb.bitgen
        assert ts.syn < tb.syn

    def test_full_bitstream_cheaper_than_partial(self):
        model = CadTimingModel()
        t = model.stage_times("e", lut_count=10)
        assert model.full_bitstream_seconds() < t.bitgen

    def test_deterministic_per_entity(self):
        model = CadTimingModel()
        assert model.stage_times("same", 50) == model.stage_times("same", 50)

    def test_scaled_times(self):
        model = CadTimingModel()
        t = model.stage_times("e", 50)
        half = t.scaled(0.5)
        assert half.total == pytest.approx(0.5 * t.total)
