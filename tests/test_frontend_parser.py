"""Tests for the MiniC parser."""

import pytest

from repro.frontend import ast
from repro.frontend.errors import CompileError
from repro.frontend.parser import parse_program


def parse_expr(expr_src: str) -> ast.Expr:
    program = parse_program(f"int main() {{ return {expr_src}; }}")
    ret = program.functions[0].body.statements[0]
    assert isinstance(ret, ast.Return)
    return ret.value


class TestDeclarations:
    def test_globals_and_functions(self):
        p = parse_program(
            """
double coef[4] = {1.0, -2.0, 3.5, 4.0};
int n = 10;
int main() { return 0; }
"""
        )
        assert [g.name for g in p.globals] == ["coef", "n"]
        assert p.globals[0].array_size == 4
        assert p.globals[0].init_values == [1.0, -2.0, 3.5, 4.0]
        assert p.globals[1].init_values == [10]
        assert [f.name for f in p.functions] == ["main"]

    def test_function_parameters(self):
        p = parse_program("int f(int a, double b, int* p) { return a; }")
        params = p.functions[0].params
        assert [(str(q.ctype), q.name) for q in params] == [
            ("int", "a"),
            ("double", "b"),
            ("int*", "p"),
        ]

    def test_pointer_types(self):
        p = parse_program("int f(double** pp) { return 0; }")
        assert p.functions[0].params[0].ctype.pointer_depth == 2


class TestPrecedence:
    def test_mul_binds_tighter_than_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, ast.Binary) and e.op == "+"
        assert isinstance(e.rhs, ast.Binary) and e.rhs.op == "*"

    def test_comparison_below_arithmetic(self):
        e = parse_expr("a + b < c * d")
        assert e.op == "<"

    def test_logical_lowest(self):
        e = parse_expr("a < b && c < d || e")
        assert e.op == "||"
        assert e.lhs.op == "&&"

    def test_shift_between_add_and_compare(self):
        e = parse_expr("a + b << c < d")
        assert e.op == "<"
        assert e.lhs.op == "<<"

    def test_parentheses_override(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*" and e.lhs.op == "+"

    def test_assignment_right_associative(self):
        p = parse_program("int main() { int a; int b; a = b = 1; return a; }")
        stmt = p.functions[0].body.statements[2]
        assign = stmt.expr
        assert isinstance(assign, ast.Assign)
        assert isinstance(assign.value, ast.Assign)

    def test_ternary(self):
        e = parse_expr("a ? b : c ? d : e")
        assert isinstance(e, ast.Conditional)
        assert isinstance(e.if_false, ast.Conditional)

    def test_unary_and_cast(self):
        e = parse_expr("-(double)x")
        assert isinstance(e, ast.Unary) and e.op == "-"
        assert isinstance(e.operand, ast.Cast)

    def test_postfix_index_chain(self):
        e = parse_expr("a[i][j]")
        assert isinstance(e, ast.Index) and isinstance(e.base, ast.Index)

    def test_call_with_args(self):
        e = parse_expr("f(1, g(2), x + 1)")
        assert isinstance(e, ast.Call) and len(e.args) == 3
        assert isinstance(e.args[1], ast.Call)


class TestStatements:
    def test_for_with_decl(self):
        p = parse_program("int main() { for (int i = 0; i < 4; i++) {} return 0; }")
        loop = p.functions[0].body.statements[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.VarDecl)
        assert loop.cond is not None and loop.step is not None

    def test_for_all_parts_optional(self):
        p = parse_program("int main() { for (;;) break; return 0; }")
        loop = p.functions[0].body.statements[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_if_else_chain(self):
        p = parse_program(
            "int main() { if (1) return 1; else if (2) return 2; else return 3; }"
        )
        stmt = p.functions[0].body.statements[0]
        assert isinstance(stmt.else_body, ast.If)

    def test_while_break_continue(self):
        p = parse_program(
            "int main() { while (1) { if (1) break; continue; } return 0; }"
        )
        loop = p.functions[0].body.statements[0]
        assert isinstance(loop, ast.While)


class TestErrors:
    @pytest.mark.parametrize(
        "source,pattern",
        [
            ("int main() { return 1 }", "expected ';'"),
            ("int main() { 5 = x; return 0; }", "assignment target"),
            ("int main() { ++5; return 0; }", "increment target"),
            ("int main( { return 0; }", "expected"),
            ("int main() { int a[n]; return 0; }", "integer literal"),
            ("foo main() { return 0; }", "expected declaration"),
            ("int main() { return 0;", "unterminated|expected"),
        ],
    )
    def test_rejects(self, source, pattern):
        with pytest.raises(CompileError):
            parse_program(source)
