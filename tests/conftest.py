"""Shared fixtures: small programs exercising every pipeline stage."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.ir import I32, IRBuilder, Module
from repro.ir.opcodes import ICmpPred
from repro.vm import Interpreter


@pytest.fixture
def fp_kernel_source() -> str:
    """A small FP stencil kernel: rich MAXMISO candidates, fast to run."""
    return """
double a[64]; double b[64]; double c[64];
int main() {
    int n = dataset_size();
    if (n < 8) n = 8;
    if (n > 64) n = 64;
    srand(dataset_seed());
    for (int i = 0; i < 64; i++) { a[i] = 0.01 * (double)(rand() % 100); b[i] = 1.0; }
    double s = 0.0;
    for (int it = 0; it < 12; it++) {
        for (int i = 0; i < n - 1; i++) {
            c[i] = a[i] * b[i] + a[i + 1] * 0.25 - b[i] / 3.0;
            s += c[i] * c[i];
        }
    }
    print_f64(s);
    return 0;
}
"""


@pytest.fixture
def fp_kernel(fp_kernel_source):
    """Compiled FP kernel module."""
    return compile_source(fp_kernel_source, "fp_kernel")


@pytest.fixture
def fp_kernel_profile(fp_kernel):
    """(module, profile, result) of the FP kernel on a fixed dataset."""
    interp = Interpreter(fp_kernel.module, dataset_size=48, dataset_seed=3)
    result = interp.run("main")
    return fp_kernel.module, result.profile, result


def build_sumsq_module() -> Module:
    """Hand-built (unoptimized) sum-of-squares function for IR-level tests.

    Uses alloca/load/store locals so mem2reg has work to do.
    """
    module = Module("sumsq")
    func = module.declare_function("sumsq", I32, [("n", I32)])
    entry = func.add_block("entry")
    loop = func.add_block("loop")
    body = func.add_block("body")
    done = func.add_block("done")

    b = IRBuilder(entry)
    acc_slot = b.alloca(I32)
    i_slot = b.alloca(I32)
    b.store(b.i32(0), acc_slot)
    b.store(b.i32(0), i_slot)
    b.br(loop)

    b.set_block(loop)
    i = b.load(I32, i_slot)
    cond = b.icmp(ICmpPred.SLT, i, func.args[0])
    b.condbr(cond, body, done)

    b.set_block(body)
    i2 = b.load(I32, i_slot)
    sq = b.mul(i2, i2)
    acc = b.load(I32, acc_slot)
    b.store(b.add(acc, sq), acc_slot)
    b.store(b.add(i2, b.i32(1)), i_slot)
    b.br(loop)

    b.set_block(done)
    b.ret(b.load(I32, acc_slot))
    return module


@pytest.fixture
def sumsq_module() -> Module:
    return build_sumsq_module()


def run_main(source: str, module_name: str = "t", dataset_size: int = 0, seed: int = 1):
    """Compile + run a MiniC program, return the ExecutionResult."""
    result = compile_source(source, module_name)
    interp = Interpreter(result.module, dataset_size=dataset_size, dataset_seed=seed)
    return interp.run("main")
