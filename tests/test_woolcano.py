"""Tests for the Woolcano machine model: slots, reconfiguration, speedups."""

import pytest

from repro.fpga.bitgen import PartialBitstream
from repro.ise import CandidateSearch
from repro.ise.pruning import NO_PRUNING
from repro.woolcano import (
    CustomInstructionSlots,
    DEFAULT_FCB,
    IcapModel,
    SlotError,
    WoolcanoMachine,
)


def _bitstream(n: int) -> PartialBitstream:
    return PartialBitstream(
        entity=f"ci_{n}",
        data=b"\xaa\x99\x55\x66" + bytes([n % 256]) * 64,
        frame_count=10,
        column_count=2,
        nominal_size_bytes=3_000_000,
    )


class TestFcb:
    def test_two_operand_one_result_free(self):
        # decode only: a native UDI shape needs no extra transfers
        assert DEFAULT_FCB.transfer_cycles(2, 1) == DEFAULT_FCB.decode_cycles

    def test_extra_inputs_cost_transfers(self):
        base = DEFAULT_FCB.transfer_cycles(2, 1)
        assert DEFAULT_FCB.transfer_cycles(4, 1) == base + 1
        assert DEFAULT_FCB.transfer_cycles(6, 1) == base + 2

    def test_extra_outputs_cost_transfers(self):
        base = DEFAULT_FCB.transfer_cycles(2, 1)
        assert DEFAULT_FCB.transfer_cycles(2, 3) == base + 2

    def test_monotone(self):
        prev = 0
        for n_in in range(1, 10):
            cur = DEFAULT_FCB.transfer_cycles(n_in, 1)
            assert cur >= prev
            prev = cur


class TestSlots:
    def test_load_and_residency(self):
        slots = CustomInstructionSlots(capacity=2)
        slots.load(0, 111, _bitstream(0))
        slots.load(1, 222, _bitstream(1))
        assert slots.resident == [0, 1]
        assert slots.free_slots == 0

    def test_lru_eviction(self):
        slots = CustomInstructionSlots(capacity=2)
        slots.load(0, 1, _bitstream(0))
        slots.load(1, 2, _bitstream(1))
        slots.touch(0)  # 1 becomes LRU
        evicted = slots.load(2, 3, _bitstream(2))
        assert evicted is not None and evicted.custom_id == 1
        assert slots.resident == [0, 2]
        assert slots.evictions == 1

    def test_reload_resident_is_noop(self):
        slots = CustomInstructionSlots(capacity=2)
        slots.load(0, 1, _bitstream(0))
        assert slots.load(0, 1, _bitstream(0)) is None
        assert slots.loads == 1

    def test_touch_missing_raises(self):
        slots = CustomInstructionSlots(capacity=2)
        with pytest.raises(SlotError):
            slots.touch(9)

    def test_zero_capacity_rejected(self):
        slots = CustomInstructionSlots(capacity=0)
        with pytest.raises(SlotError):
            slots.load(0, 1, _bitstream(0))


class TestIcap:
    def test_reconfiguration_time_scales_with_size(self):
        icap = IcapModel()
        small = icap.reconfigure(0, _bitstream(0))
        big = PartialBitstream("x", b"\x00" * 10, 10, 2, 30_000_000)
        assert icap.reconfigure(1, big).seconds > small.seconds

    def test_milliseconds_scale(self):
        # a ~3.4 MB partial bitstream through ICAP takes milliseconds,
        # negligible next to the CAD flow (paper Section V)
        icap = IcapModel()
        ev = icap.reconfigure(0, _bitstream(0))
        assert 0.001 < ev.seconds < 0.1


class TestSpeedup:
    def test_fp_kernel_speedup_above_one(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        search = CandidateSearch(pruning=NO_PRUNING).run(module, profile)
        machine = WoolcanoMachine()
        sp = machine.speedup(module, profile, search.selected)
        assert sp.ratio > 1.2
        assert sp.base_cycles > sp.asip_cycles

    def test_no_candidates_ratio_one(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        machine = WoolcanoMachine()
        sp = machine.speedup(module, profile, [])
        assert sp.ratio == pytest.approx(1.0)

    def test_negative_saving_clamped(self, fp_kernel_profile):
        # Even a deliberately unprofitable estimate cannot slow the machine
        # down: the patched binary keeps the software path.
        import dataclasses

        module, profile, _ = fp_kernel_profile
        search = CandidateSearch(pruning=NO_PRUNING).run(module, profile)
        est = search.selected[0]
        bad = dataclasses.replace(est, sw_cycles=1.0, hw_cycles=1000.0)
        machine = WoolcanoMachine()
        sp = machine.speedup(module, profile, [bad])
        assert sp.ratio >= 1.0

    def test_more_candidates_at_least_as_fast(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        search = CandidateSearch(pruning=NO_PRUNING).run(module, profile)
        machine = WoolcanoMachine()
        one = machine.speedup(module, profile, search.selected[:1])
        all_ = machine.speedup(module, profile, search.selected)
        assert all_.ratio >= one.ratio - 1e-9

    def test_woolcano_cost_model_prices_custom(self):
        from repro.ir import I32, IRBuilder, Module
        from repro.ir.instructions import Instruction
        from repro.ir.opcodes import Opcode
        from repro.woolcano.machine import WoolcanoCostModel

        m = Module("t")
        f = m.declare_function("f", I32, [("a", I32)])
        b = IRBuilder(f.add_block("entry"))
        custom = Instruction(Opcode.CUSTOM, I32, [f.args[0]], "c", custom_id=3)
        f.entry.append(custom)
        b.set_block(f.entry)
        b.ret(custom)
        cm = WoolcanoCostModel(custom_costs={3: 7.5})
        assert cm.cycles_for(custom) == 7.5
        with pytest.raises(KeyError):
            WoolcanoCostModel().cycles_for(custom)
