"""Tests for the IR verifier: each structural invariant has a violation test."""

import pytest

from repro.ir import (
    I32,
    IRBuilder,
    Module,
    VerificationError,
    verify_function,
    verify_module,
)
from repro.ir.instructions import Instruction, PhiInstruction
from repro.ir.opcodes import ICmpPred, Opcode
from repro.ir.types import VOID
from repro.ir.values import Constant

from conftest import build_sumsq_module


def _simple_func():
    m = Module("t")
    f = m.declare_function("f", I32, [("a", I32)])
    entry = f.add_block("entry")
    b = IRBuilder(entry)
    v = b.add(f.args[0], b.i32(1))
    b.ret(v)
    return m, f


class TestStructure:
    def test_valid_function_passes(self):
        m, f = _simple_func()
        verify_module(m)

    def test_sumsq_module_passes(self):
        verify_module(build_sumsq_module())

    def test_missing_terminator(self):
        m = Module("t")
        f = m.declare_function("f", I32, [("a", I32)])
        entry = f.add_block("entry")
        IRBuilder(entry).add(f.args[0], Constant(I32, 1))
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(f)

    def test_empty_block(self):
        m, f = _simple_func()
        f.add_block("empty")
        with pytest.raises(VerificationError, match="empty"):
            verify_function(f)

    def test_ret_type_mismatch(self):
        m = Module("t")
        f = m.declare_function("f", I32, [])
        entry = f.add_block("entry")
        instr = Instruction(Opcode.RET, VOID, [Constant(I32, 1)])
        # sneak in a wrong-typed ret by hand
        entry.append(
            Instruction(Opcode.RET, VOID, [Constant(I32, 0)])
        )
        verify_function(f)  # fine: i32 matches
        f2 = m.declare_function("g", I32, [])
        e2 = f2.add_block("entry")
        e2.append(Instruction(Opcode.RET, VOID, []))
        with pytest.raises(VerificationError, match="ret"):
            verify_function(f2)

    def test_phi_after_non_phi(self):
        m, f = _simple_func()
        entry = f.entry
        phi = PhiInstruction(I32, "p")
        entry.insert(1, phi)  # after the add
        phi.add_incoming(Constant(I32, 0), entry)
        with pytest.raises(VerificationError):
            verify_function(f)


class TestPhiConsistency:
    def _diamond(self):
        m = Module("t")
        f = m.declare_function("f", I32, [("a", I32)])
        entry = f.add_block("entry")
        left = f.add_block("left")
        right = f.add_block("right")
        join = f.add_block("join")
        b = IRBuilder(entry)
        cond = b.icmp(ICmpPred.SGT, f.args[0], b.i32(0))
        b.condbr(cond, left, right)
        b.set_block(left)
        lval = b.add(f.args[0], b.i32(1))
        b.br(join)
        b.set_block(right)
        rval = b.add(f.args[0], b.i32(2))
        b.br(join)
        b.set_block(join)
        phi = b.phi(I32)
        return m, f, phi, (left, lval), (right, rval), b

    def test_complete_phi_ok(self):
        m, f, phi, (l, lv), (r, rv), b = self._diamond()
        phi.add_incoming(lv, l)
        phi.add_incoming(rv, r)
        b.ret(phi)
        verify_function(f)

    def test_phi_missing_predecessor(self):
        m, f, phi, (l, lv), (r, rv), b = self._diamond()
        phi.add_incoming(lv, l)
        b.ret(phi)
        with pytest.raises(VerificationError, match="missing incoming"):
            verify_function(f)

    def test_phi_duplicate_predecessor(self):
        m, f, phi, (l, lv), (r, rv), b = self._diamond()
        phi.add_incoming(lv, l)
        phi.add_incoming(lv, l)
        phi.add_incoming(rv, r)
        b.ret(phi)
        with pytest.raises(VerificationError, match="twice"):
            verify_function(f)

    def test_phi_non_predecessor(self):
        m, f, phi, (l, lv), (r, rv), b = self._diamond()
        phi.add_incoming(lv, l)
        phi.add_incoming(rv, r)
        stray = f.add_block("stray")
        IRBuilder(stray).br(stray)
        phi.add_incoming(Constant(I32, 9), stray)
        b.ret(phi)
        with pytest.raises(VerificationError, match="non-predecessor"):
            verify_function(f)


class TestSsaDominance:
    def test_use_before_def_in_block(self):
        m, f = _simple_func()
        entry = f.entry
        add = entry.instructions[0]
        # insert a user before the definition
        user = Instruction(Opcode.ADD, I32, [add, Constant(I32, 1)], "early")
        entry.insert(0, user)
        with pytest.raises(VerificationError, match="before its definition"):
            verify_function(f)

    def test_use_not_dominated(self):
        m = Module("t")
        f = m.declare_function("f", I32, [("a", I32)])
        entry = f.add_block("entry")
        left = f.add_block("left")
        join = f.add_block("join")
        b = IRBuilder(entry)
        cond = b.icmp(ICmpPred.SGT, f.args[0], b.i32(0))
        b.condbr(cond, left, join)
        b.set_block(left)
        lval = b.add(f.args[0], b.i32(1))
        b.br(join)
        b.set_block(join)
        b.ret(lval)  # lval does not dominate join
        with pytest.raises(VerificationError, match="dominate"):
            verify_function(f)

    def test_operand_from_other_function(self):
        m, f = _simple_func()
        g = m.declare_function("g", I32, [("x", I32)])
        ge = g.add_block("entry")
        b = IRBuilder(ge)
        b.ret(b.add(g.args[0], Constant(I32, 1)))
        # f uses g's instruction
        stolen = ge.instructions[0]
        f.entry.instructions[0].operands[1] = stolen
        with pytest.raises(VerificationError, match="not in function"):
            verify_function(f)


class TestTypeChecks:
    def test_binop_type_mismatch_detected(self):
        m, f = _simple_func()
        add = f.entry.instructions[0]
        add.operands[1] = Constant(I32, 1)
        add.type = I32
        verify_function(f)
        # now corrupt the type
        from repro.ir.types import I64

        add.type = I64
        # The corrupted add now breaks both the binop typing rule and the
        # ret-type rule; either diagnosis is a correct rejection.
        with pytest.raises(VerificationError):
            verify_function(f)
