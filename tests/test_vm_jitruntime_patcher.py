"""Tests for the VM runtime model and the binary patcher."""

import pytest

from repro.frontend import compile_source
from repro.ir.verifier import verify_module
from repro.ise import CandidateSearch
from repro.vm import Interpreter, JitRuntimeModel
from repro.vm.patcher import BinaryPatcher, PatchError, build_evaluator


class TestJitRuntimeModel:
    def _profile(self, src, name="t", **kw):
        module = compile_source(src, name).module
        result = Interpreter(module, **kw).run("main")
        return module, result.profile

    def test_vm_slower_for_short_flat_programs(self):
        src = """
int main() {
    int acc = 0;
    for (int i = 0; i < 50; i++) acc += i;
    return acc;
}
"""
        module, prof = self._profile(src)
        est = JitRuntimeModel().estimate(module, prof)
        assert est.ratio > 1.0  # translation cost never amortized

    def test_vm_competitive_for_hot_kernels(self):
        src = """
double acc = 0.0;
int main() {
    for (int i = 0; i < 30000; i++) acc += (double)i * 0.5;
    return 0;
}
"""
        module, prof = self._profile(src)
        est = JitRuntimeModel().estimate(module, prof)
        assert est.ratio < 1.1  # re-optimized hot loop amortizes the VM

    def test_ratio_definition(self):
        src = "int main() { return 0; }"
        module, prof = self._profile(src)
        est = JitRuntimeModel().estimate(module, prof)
        assert est.ratio == pytest.approx(est.vm_seconds / est.native_seconds)

    def test_unexecuted_functions_not_translated(self):
        src = """
int unused(int x) { return x * 3; }
int main() { return 1; }
"""
        module, prof = self._profile(src)
        model = JitRuntimeModel()
        with_dead = model.estimate(module, prof).vm_seconds
        # removing the dead function must not change VM time
        del module.functions["unused"]
        without_dead = model.estimate(module, prof).vm_seconds
        assert with_dead == pytest.approx(without_dead)


class TestPatcher:
    def _search(self, fp_kernel_module, profile):
        return CandidateSearch().run(fp_kernel_module, profile)

    def test_patched_module_verifies_and_matches(self, fp_kernel_profile):
        module, profile, baseline = fp_kernel_profile
        search = self._search(module, profile)
        assert search.candidate_count >= 1
        patcher = BinaryPatcher()
        patcher.patch_module(module, search.candidates())
        verify_module(module)
        interp = Interpreter(module, dataset_size=48, dataset_seed=3)
        patcher.install(interp)
        patched = interp.run("main")
        assert patched.output == baseline.output

    def test_patch_reduces_dynamic_instructions(self, fp_kernel_profile):
        module, profile, baseline = fp_kernel_profile
        search = self._search(module, profile)
        patcher = BinaryPatcher()
        patcher.patch_module(module, search.candidates())
        interp = Interpreter(module, dataset_size=48, dataset_seed=3)
        patcher.install(interp)
        patched = interp.run("main")
        assert patched.steps < baseline.steps

    def test_custom_ids_unique(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        search = self._search(module, profile)
        patcher = BinaryPatcher()
        records = patcher.patch_module(module, search.candidates())
        ids = [r.custom_id for r in records]
        assert len(set(ids)) == len(ids)

    def test_missing_evaluator_raises(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        search = self._search(module, profile)
        patcher = BinaryPatcher()
        patcher.patch_module(module, search.candidates())
        interp = Interpreter(module, dataset_size=48, dataset_seed=3)
        # deliberately do NOT install evaluators
        from repro.vm import VMError

        with pytest.raises(VMError, match="no evaluator"):
            interp.run("main")

    def test_evaluator_matches_interpreter_semantics(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        search = self._search(module, profile)
        est = search.selected[0]
        cand = est.candidate
        evaluator = build_evaluator(cand)
        # feed simple values; compare against manual expression where the
        # candidate is c = a*b + a2*0.25 - b/3.0 style; just check it is a
        # finite float and deterministic
        args = [float(i + 1) for i in range(len(cand.inputs))]
        v1 = evaluator(list(args))
        v2 = evaluator(list(args))
        assert v1 == v2

    def test_evaluator_wrong_arity(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        search = self._search(module, profile)
        evaluator = build_evaluator(search.selected[0].candidate)
        with pytest.raises(PatchError, match="operands"):
            evaluator([1.0])

    def test_double_patch_rejected(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        search = self._search(module, profile)
        patcher = BinaryPatcher()
        patcher.patch_module(module, search.candidates())
        with pytest.raises(PatchError):
            patcher.patch_module(module, search.candidates())
