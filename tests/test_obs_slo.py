"""Tests for the SLO engine, fleet history, and anomaly detection.

Covers the serving-era observability layer over Section VI's break-even
framing: declarative error-budget objectives with Google-SRE multi-window
burn-rate alerts (``repro slo``), gc compaction of pruned manifests into
``history.jsonl``, per-cell fleet time series with robust median+MAD
changepoint detection (``repro anomaly`` / ``repro runs trend``), and
history-derived noise bands feeding the regression sentinel
(``repro regress --history N``).
"""

from __future__ import annotations

import json

import pytest

from repro.obs.history import (
    append_history,
    build_series,
    collect_entries,
    derive_noise_bands,
    detect_anomalies,
    history_path,
    load_history,
)
from repro.obs.ledger import RunLedger, RunRecorder, prune_runs
from repro.obs.regress import compare_manifests
from repro.obs.slo import (
    apply_objective_spec,
    default_objectives,
    evaluate,
    write_alerts,
)

TRACE_ID = "deadbeef" * 4


def _request_record(
    t: float,
    status: str = "ok",
    be: float | None = 100.0,
    candidates: int = 2,
    cache_hits: int = 2,
    shared: int = 0,
) -> dict:
    """One requests.jsonl row as the daemon's accounting writes it."""
    ok = status == "ok"
    return {
        "t_offset": float(t),
        "tenant": "acme",
        "app": "adpcm",
        "request_id": f"r{int(t):04d}",
        "status": status,
        "queue_wait_ms": 1.0,
        "service_ms": 5.0,
        "break_even_seconds": be if ok else None,
        "candidates": candidates if ok else None,
        "cache_hits": cache_hits if ok else None,
        "shared": shared if ok else None,
        "error": None if ok else "boom",
        "trace_id": TRACE_ID,
        "span_id": 7,
    }


def _record_run(ledger: RunLedger, command: str, scalars: dict) -> str:
    recorder = RunRecorder(
        ledger=ledger,
        run_id=ledger.reserve_run(command),
        command=command,
    )
    recorder.attach_scalars(scalars)
    recorder.finalize(status=0)
    return recorder.run_id


class TestSloEvaluate:
    def test_healthy_stream_keeps_all_budgets(self):
        records = [_request_record(float(i)) for i in range(20)]
        report = evaluate(records)
        summary = report.summary()
        assert set(summary) == {
            "break_even_p95",
            "queue_reject_rate",
            "dedup_efficiency",
            "error_rate",
        }
        assert not report.breached
        assert report.alerts == []
        for row in summary.values():
            assert row["budget_remaining_pct"] == 100.0
            assert row["bad"] == 0
            assert row["alert"] is None
        assert summary["error_rate"]["good"] == 20

    def test_tight_break_even_bound_pages_with_trace_correlation(self):
        # Every completed request misses a deliberately impossible bound:
        # bad fraction 1.0 against a 5% budget burns at 20x on both
        # windows, above the 14.4x page threshold.
        records = [_request_record(float(i), be=500.0) for i in range(20)]
        report = evaluate(records, default_objectives(break_even_threshold=1e-6))
        status = {r.objective.name: r for r in report.results}
        be = status["break_even_p95"]
        assert be.breached
        assert be.burn_fast >= 14.4 and be.burn_slow >= 14.4
        assert be.budget_remaining is not None and be.budget_remaining <= 0.0
        alert = be.alert
        assert alert["kind"] == "fast_burn"
        assert alert["severity"] == "page"
        # The alert resolves against the stitched trace of the offender.
        assert alert["trace_id"] == TRACE_ID
        assert alert["span_id"] == 7
        assert alert["request_id"] == "r0019"
        # The other objectives are unaffected by the tightened bound.
        assert status["error_rate"].alert is None
        assert not status["error_rate"].breached

    def test_old_failures_ticket_slow_burn_without_paging(self):
        # 10 failures early in the run (outside the 60s fast window at
        # evaluation time) plus a clean recent stretch: the slow window
        # burns at ~16x (ticket) but the fast window is quiet (no page).
        records = [
            _request_record(float(i), status="failed" if i < 10 else "ok")
            for i in range(40)
        ]
        records += [_request_record(220.0 + i) for i in range(20)]
        report = evaluate(records)
        status = {r.objective.name: r for r in report.results}
        err = status["error_rate"]
        assert err.burn_fast < 14.4
        assert err.burn_slow >= 6.0
        assert err.alert["kind"] == "slow_burn"
        assert err.alert["severity"] == "ticket"

    def test_empty_stream_is_not_applicable(self):
        report = evaluate([])
        for r in report.results:
            assert r.total == 0
            assert r.budget_remaining is None
            assert r.alert is None
        assert not report.breached


class TestObjectiveSpecs:
    def test_override_keeps_other_fields(self):
        objectives = default_objectives()
        updated = apply_objective_spec(objectives, "error_rate:target=0.5")
        assert len(updated) == len(objectives)
        (err,) = [o for o in updated if o.name == "error_rate"]
        assert err.target == 0.5
        assert err.good == "completed"  # untouched

    def test_new_objective_needs_classifier_and_target(self):
        objectives = default_objectives()
        added = apply_objective_spec(
            objectives, "strict_be:good=break_even_under,target=0.9,threshold=60"
        )
        assert len(added) == len(objectives) + 1
        assert added[-1].name == "strict_be"
        assert added[-1].threshold == 60.0
        with pytest.raises(ValueError):
            apply_objective_spec(objectives, "bare:target=0.5")
        with pytest.raises(ValueError):
            apply_objective_spec(objectives, "bad:good=nope,target=0.5")
        with pytest.raises(ValueError):
            apply_objective_spec(objectives, ":target=0.5")
        with pytest.raises(ValueError):
            apply_objective_spec(objectives, "error_rate:bogus=1")

    def test_write_alerts_appends_and_stamps(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        write_alerts(path, [{"objective": "a", "kind": "fast_burn"}], "r0001-x")
        write_alerts(path, [{"objective": "b", "kind": "slow_burn"}], "r0002-y")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["run_id"] for r in rows] == ["r0001-x", "r0002-y"]
        assert [r["objective"] for r in rows] == ["a", "b"]
        assert all(isinstance(r["ts"], float) for r in rows)


class TestSloCli:
    def _loadgen_run(self, ledger: RunLedger, records: list[dict]) -> str:
        recorder = RunRecorder(
            ledger=ledger,
            run_id=ledger.reserve_run("loadgen"),
            command="loadgen",
        )
        with open(recorder.run_dir / "requests.jsonl", "w") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        recorder.finalize(status=0)
        return recorder.run_id

    def test_slo_reports_attaches_and_breaches(self, tmp_path, capsys):
        from repro.cli import main

        ledger = RunLedger(tmp_path / "ledger")
        records = [_request_record(float(i)) for i in range(20)]
        run_id = self._loadgen_run(ledger, records)
        ledger_args = ["--ledger", str(ledger.path)]

        assert main(["slo", "latest", *ledger_args]) == 0
        out = capsys.readouterr().out
        assert "SLO evaluation" in out
        for name in ("break_even_p95", "queue_reject_rate", "error_rate"):
            assert name in out
        # The summary block landed on the manifest (regress sees slo.*).
        manifest = ledger.load(run_id)
        assert manifest["slo"]["error_rate"]["budget_remaining_pct"] == 100.0

        # A deliberately breached bound exits 1 and appends a page alert.
        assert (
            main(["slo", "latest", "--break-even-threshold", "1e-6", *ledger_args])
            == 1
        )
        captured = capsys.readouterr()
        assert "BREACHED" in captured.err
        alerts_file = ledger.run_dir(run_id) / "alerts.jsonl"
        alerts = [
            json.loads(line) for line in alerts_file.read_text().splitlines()
        ]
        assert any(
            a["kind"] == "fast_burn" and a["run_id"] == run_id for a in alerts
        )

    def test_slo_without_requests_errors(self, tmp_path, capsys):
        from repro.cli import main

        ledger = RunLedger(tmp_path / "ledger")
        _record_run(ledger, "demo", {"metric": 1.0})
        assert main(["slo", "latest", "--ledger", str(ledger.path)]) == 2
        assert "requests.jsonl" in capsys.readouterr().err


class TestHistoryCompaction:
    def test_gc_compacts_pruned_manifests(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        ids = [
            _record_run(ledger, "demo", {"metric": float(i)}) for i in range(5)
        ]
        removed = prune_runs(ledger, keep=2)
        assert removed == ids[:3]
        compacted = load_history(ledger)
        assert [e["run_id"] for e in compacted] == ids[:3]
        assert compacted[0]["cells"]["scalars.metric"] == 0.0
        # collect_entries stitches compacted + live back into one timeline.
        entries = collect_entries(ledger)
        assert [e["run_id"] for e in entries] == ids
        series = build_series(entries, ["scalars.metric"])
        assert series == {
            "scalars.metric": [(ids[i], float(i)) for i in range(5)]
        }

    def test_gc_cli_reports_compaction_and_no_compact_skips(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        ledger = RunLedger(tmp_path / "ledger")
        for i in range(4):
            _record_run(ledger, "demo", {"metric": float(i)})
        args = ["--ledger", str(ledger.path)]
        assert main(["runs", "gc", "--keep", "3", "--no-compact", *args]) == 0
        assert not history_path(ledger).exists()
        assert main(["runs", "gc", "--keep", "1", *args]) == 0
        out = capsys.readouterr().out
        assert "compacted 2 manifest(s)" in out
        assert history_path(ledger).is_file()
        assert len(load_history(ledger)) == 2

    def test_live_manifest_wins_over_stale_history_entry(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        run_id = _record_run(ledger, "demo", {"metric": 1.0})
        stale = dict(ledger.load(run_id))
        stale["scalars"] = {"metric": 999.0}
        append_history(ledger, [stale])
        # An interrupted prune must not double-count or shadow the run.
        entries = collect_entries(ledger)
        assert len(entries) == 1
        assert entries[0]["cells"]["scalars.metric"] == 1.0


class TestAnomalyDetection:
    def test_seeded_regression_flags_exactly_one_cell(self):
        runs = [f"r{i:04d}" for i in range(6)]
        series = {
            # Ordinary measurement jitter around a stable level: quiet.
            "serve.latency.p95": list(
                zip(runs, [100.0, 100.4, 99.6, 100.2, 99.8, 100.05])
            ),
            # Seeded regression: a 50% level shift in the newest run.
            "serve.latency.p50": list(
                zip(runs, [50.0, 50.2, 49.8, 50.1, 49.9, 75.0])
            ),
            # Deterministic virtual-clock cell, bit-identical: quiet.
            "scalars.break_even": list(zip(runs, [3.25] * 6)),
        }
        anomalies = detect_anomalies(series)
        assert [a.cell for a in anomalies] == ["serve.latency.p50"]
        (a,) = anomalies
        assert a.run_id == "r0005"
        assert a.baseline_median == pytest.approx(50.0)
        assert a.rel_change == pytest.approx(0.5)
        assert a.zscore > 4.0
        assert "serve.latency.p50" in a.describe()

    def test_constant_cell_shift_flags_with_infinite_z(self):
        runs = [f"r{i:04d}" for i in range(6)]
        series = {
            # A historically bit-identical cell that moves at all IS the
            # regression, however small the move (MAD = 0 branch).
            "scalars.break_even": list(zip(runs, [3.25] * 5 + [3.3]))
        }
        (a,) = detect_anomalies(series)
        assert a.zscore == float("inf")
        assert a.mad == 0.0
        assert "inf" in a.describe()

    def test_short_history_is_never_judged(self):
        series = {"cell": [(f"r{i}", v) for i, v in enumerate([1.0, 1.0, 9.0])]}
        assert detect_anomalies(series) == []

    def test_anomaly_cli_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        ledger = RunLedger(tmp_path / "ledger")
        for value in (50.0, 50.2, 49.8, 50.1, 49.9):
            _record_run(ledger, "demo", {"search_ms": value})
        args = ["--ledger", str(ledger.path), "--cells", "scalars.*"]

        # Five stable runs: quiet, exit 0.
        assert main(["anomaly", *args]) == 0
        assert "no anomalies across 5 run(s)" in capsys.readouterr().out

        # A sixth run with a seeded 60% regression: exactly one cell
        # flagged, exit 1, JSON report written.
        regressed = _record_run(ledger, "demo", {"search_ms": 80.0})
        out_file = tmp_path / "anomalies.json"
        assert main(["anomaly", *args, "--out", str(out_file)]) == 1
        out = capsys.readouterr().out
        assert "1 anomalous cell(s) across 6 run(s)" in out
        assert "scalars.search_ms" in out and regressed in out
        payload = json.loads(out_file.read_text())
        assert payload["schema"] == "repro-anomaly/1"
        (flagged,) = payload["anomalies"]
        assert flagged["cell"] == "scalars.search_ms"
        assert flagged["run_id"] == regressed
        assert flagged["zscore"] is not None  # finite z serializes as-is

    def test_trend_cli_writes_report(self, tmp_path, capsys):
        from repro.cli import main

        ledger = RunLedger(tmp_path / "ledger")
        for value in (50.0, 50.2, 49.8):
            _record_run(ledger, "demo", {"search_ms": value})
        out_file = tmp_path / "trend.json"
        assert (
            main(
                [
                    "runs",
                    "trend",
                    "--ledger",
                    str(ledger.path),
                    "--cells",
                    "scalars.*",
                    "--out",
                    str(out_file),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "scalars.search_ms" in out
        report = json.loads(out_file.read_text())
        assert report["schema"] == "repro-trend/1"
        cell = report["cells"]["scalars.search_ms"]
        assert cell["n"] == 3
        assert cell["values"] == [50.0, 50.2, 49.8]


class TestHistoryNoiseBands:
    def _entries(self, walls: list[float]) -> list[dict]:
        return [
            {
                "run_id": f"r{i:04d}",
                "command": "demo",
                "cells": {
                    "wall_seconds": wall,
                    "scalars.break_even_model": 3.25,
                },
            }
            for i, wall in enumerate(walls)
        ]

    def _manifest(self, wall: float, be_model: float = 3.25) -> dict:
        return {
            "schema": "repro-run/1",
            "run_id": "r0001-demo",
            "command": "demo",
            "config": {"command": "demo"},
            "status": 0,
            "wall_seconds": wall,
            "scalars": {"break_even_model": be_model},
        }

    def test_bands_cover_only_measured_cells(self):
        bands = derive_noise_bands(self._entries([10.0, 10.2, 9.8, 10.1]))
        # wall_seconds is informational by default -> banded; the modelled
        # break-even cell has an exact-ish tolerance -> never banded.
        assert set(bands) == {"wall_seconds"}
        band = bands["wall_seconds"]
        assert band["samples"] == 4
        assert band["median"] == pytest.approx(10.05)
        assert band["mad"] == pytest.approx(0.1)
        # Too few samples: no band at all.
        assert derive_noise_bands(self._entries([10.0, 10.2])) == {}

    def test_bands_gate_measured_cells_without_touching_exact_gates(self):
        bands = derive_noise_bands(self._entries([10.0, 10.2, 9.8, 10.1]))
        baseline = self._manifest(10.0)
        # Within the band (allowance = 5% * 10.0 + 3 * 0.1 = 0.8): passes,
        # and the cell is reported as promoted by a noise band.
        ok = compare_manifests(baseline, self._manifest(10.5), noise_bands=bands)
        assert ok.ok
        assert "wall_seconds" in ok.noise_banded
        # Outside the band: the previously-informational cell now fails.
        bad = compare_manifests(
            baseline, self._manifest(11.5), noise_bands=bands
        )
        assert not bad.ok
        assert [d.cell for d in bad.regressions] == ["wall_seconds"]
        # Deterministic cells keep their own (exact) gates, unaffected by
        # the bands: a drifted modelled break-even fails via its stock
        # tolerance and is never listed as noise-banded.
        drift = compare_manifests(
            baseline, self._manifest(10.0, be_model=3.3), noise_bands=bands
        )
        assert not drift.ok
        assert [d.cell for d in drift.regressions] == [
            "scalars.break_even_model"
        ]
        assert "scalars.break_even_model" not in drift.noise_banded

    def test_regress_cli_history_flag(self, tmp_path, capsys):
        from repro.cli import main

        ledger = RunLedger(tmp_path / "ledger")
        for value in (50.0, 50.2, 49.8, 50.1, 50.05):
            _record_run(ledger, "demo", {"search_ms": value})
        # The recorder's real wall clock is microsecond noise; pin it to a
        # huge numeric tolerance so only the scalar under test is judged.
        args = [
            "--ledger",
            str(ledger.path),
            "--tol",
            "wall_seconds=1000",
            "--history",
            "6",
        ]
        # The newest run sits inside the fleet band: passes, and the
        # measured scalar was promoted to a checked cell.
        assert main(["regress", *args]) == 0
        out = capsys.readouterr().out
        assert "gated by history-derived noise bands" in out
        # A seeded 20% regression breaks out of the band: exit 1.
        _record_run(ledger, "demo", {"search_ms": 60.0})
        assert main(["regress", *args]) == 1
        err = capsys.readouterr().err
        assert "scalars.search_ms" in err
