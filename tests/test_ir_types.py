"""Tests for the IR type system."""

import pytest

from repro.ir.types import (
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    PTR,
    VOID,
    int_max_signed,
    int_min,
    to_unsigned,
    type_from_name,
    wrap_int,
)


class TestTypepredicates:
    def test_kinds(self):
        assert VOID.is_void and not VOID.is_int
        assert I32.is_int and not I32.is_float
        assert F64.is_float and not F64.is_int
        assert PTR.is_ptr

    def test_bool_detection(self):
        assert I1.is_bool
        assert not I8.is_bool

    def test_sizes(self):
        assert I1.size_bytes == 1
        assert I8.size_bytes == 1
        assert I16.size_bytes == 2
        assert I32.size_bytes == 4
        assert I64.size_bytes == 8
        assert F32.size_bytes == 4
        assert F64.size_bytes == 8
        assert PTR.size_bytes == 8

    def test_void_has_no_size(self):
        with pytest.raises(ValueError):
            VOID.size_bytes

    def test_names(self):
        assert str(I32) == "i32"
        assert str(F64) == "f64"
        assert str(PTR) == "ptr"
        assert str(VOID) == "void"

    def test_lookup_by_name(self):
        for ty in (VOID, I1, I8, I16, I32, I64, F32, F64, PTR):
            assert type_from_name(str(ty)) == ty

    def test_lookup_unknown(self):
        with pytest.raises(ValueError):
            type_from_name("i128")


class TestWrapping:
    def test_wrap_positive_overflow(self):
        assert wrap_int(2**31, I32) == -(2**31)

    def test_wrap_negative(self):
        assert wrap_int(-1, I32) == -1
        assert wrap_int(-(2**31) - 1, I32) == 2**31 - 1

    def test_wrap_identity_in_range(self):
        for v in (-(2**31), -1, 0, 1, 2**31 - 1):
            assert wrap_int(v, I32) == v

    def test_wrap_i8(self):
        assert wrap_int(128, I8) == -128
        assert wrap_int(255, I8) == -1

    def test_wrap_i1(self):
        assert wrap_int(1, I1) == 1
        assert wrap_int(2, I1) == 0

    def test_to_unsigned(self):
        assert to_unsigned(-1, I32) == 2**32 - 1
        assert to_unsigned(5, I32) == 5
        assert to_unsigned(-1, I8) == 255

    def test_limits(self):
        assert int_min(I32) == -(2**31)
        assert int_max_signed(I32) == 2**31 - 1
        assert int_min(I8) == -128

    def test_wrap_rejects_floats_types(self):
        with pytest.raises(ValueError):
            wrap_int(1, F64)
        with pytest.raises(ValueError):
            to_unsigned(1, F32)
