"""Tests for the parallel runner accelerators and the persistent cache.

Covers the cross-run realization of the paper's Section VI-A bitstream
cache (:class:`repro.core.cache.PersistentBitstreamCache`) and the
determinism contract of the parallel ASIP-SP prefetcher: ``jobs > 1`` and
a warm cache may change where wall-clock time goes, but never the
reported Table II numbers.
"""

from __future__ import annotations

import json
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.core.asip_sp import AsipSpecializationProcess
from repro.core.cache import PersistentBitstreamCache
from repro.fpga.device import VIRTEX4_FX20, VIRTEX4_FX100
from repro.fpga.toolflow import CadToolFlow
from repro.ise.selection import CandidateSearch
from repro.obs import (
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
)
from repro.obs.regress import compare_manifests


@pytest.fixture
def selected(fp_kernel_profile):
    """Selected candidate estimates of the FP kernel (non-empty)."""
    module, profile, _ = fp_kernel_profile
    result = CandidateSearch().run(module, profile)
    assert result.selected, "FP kernel should yield candidates"
    return result.selected


class TestPersistentCache:
    def test_round_trip_reattaches_candidate(self, tmp_path, selected):
        toolflow = CadToolFlow()
        est = selected[0]
        impl = toolflow.implement(est.candidate)
        cache = PersistentBitstreamCache(root=tmp_path / "bc")
        key = cache.key_for(est.candidate, toolflow.device)

        assert not cache.contains(key)
        assert cache.get(key) is None
        assert cache.misses == 1

        cache.put(key, impl)
        assert cache.contains(key)
        assert len(cache) == 1
        got = cache.get(key, est.candidate)
        assert got is not None and cache.hits == 1
        assert got.candidate is est.candidate
        assert got.entity_name == impl.entity_name
        assert got.times.total == impl.times.total
        assert got.bitstream.size_bytes == impl.bitstream.size_bytes

    def test_key_varies_with_device_and_timing_version(self, selected):
        cand = selected[0].candidate
        k100 = PersistentBitstreamCache.key_for(cand, VIRTEX4_FX100)
        k20 = PersistentBitstreamCache.key_for(cand, VIRTEX4_FX20)
        k_v2 = PersistentBitstreamCache.key_for(
            cand, VIRTEX4_FX100, timing_version=2
        )
        assert len({k100, k20, k_v2}) == 3

    def test_corrupted_index_is_ignored(self, tmp_path, selected):
        toolflow = CadToolFlow()
        impl = toolflow.implement(selected[0].candidate)
        cache = PersistentBitstreamCache(root=tmp_path / "bc")
        key = cache.key_for(selected[0].candidate, toolflow.device)
        cache.put(key, impl)

        cache.index_path.write_text("{ not json", encoding="utf-8")
        fresh = PersistentBitstreamCache(root=tmp_path / "bc")
        assert len(fresh) == 0
        assert fresh.get(key) is None and fresh.misses == 1
        # The store still works after the corruption.
        fresh.put(key, impl)
        assert fresh.contains(key)

    def test_corrupted_object_demotes_to_miss(self, tmp_path, selected):
        toolflow = CadToolFlow()
        impl = toolflow.implement(selected[0].candidate)
        cache = PersistentBitstreamCache(root=tmp_path / "bc")
        key = cache.key_for(selected[0].candidate, toolflow.device)
        cache.put(key, impl)

        cache._object_path(key).write_bytes(b"garbage")
        assert cache.get(key) is None
        assert cache.misses == 1
        # The broken entry was dropped so it is not retried forever.
        assert not cache.contains(key)

    def test_clear_empties_the_store(self, tmp_path, selected):
        toolflow = CadToolFlow()
        impl = toolflow.implement(selected[0].candidate)
        cache = PersistentBitstreamCache(root=tmp_path / "bc")
        key = cache.key_for(selected[0].candidate, toolflow.device)
        cache.put(key, impl)

        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.stats()["entries"] == 0
        assert not cache._object_path(key).exists()

    def test_eviction_keeps_newest(self, tmp_path, selected):
        toolflow = CadToolFlow()
        impl = toolflow.implement(selected[0].candidate)
        cache = PersistentBitstreamCache(root=tmp_path / "bc", max_entries=1)
        cache.put("a" * 64, impl)
        cache.put("b" * 64, impl)
        assert cache.evictions == 1
        assert len(cache) == 1
        assert cache.contains("b" * 64) and not cache.contains("a" * 64)


class TestAsipSpWithCacheAndJobs:
    def test_cold_then_warm_run_is_identical_with_fewer_cad_calls(
        self, fp_kernel_profile, tmp_path
    ):
        module, profile, _ = fp_kernel_profile
        root = tmp_path / "bc"
        registry = enable_metrics()
        try:
            cold_cache = PersistentBitstreamCache(root=root)
            r1 = AsipSpecializationProcess(bitstream_cache=cold_cache).run(
                module, profile
            )
            cold_cad = registry.snapshot()["counters"].get(
                "cad.implementations", 0
            )

            warm_cache = PersistentBitstreamCache(root=root)
            r2 = AsipSpecializationProcess(bitstream_cache=warm_cache).run(
                module, profile
            )
            warm_cad = (
                registry.snapshot()["counters"].get("cad.implementations", 0)
                - cold_cad
            )
        finally:
            disable_metrics()

        assert cold_cache.stores > 0 and warm_cache.hits > 0
        # A warm run does strictly less CAD work than a cold one ...
        assert cold_cad > 0 and warm_cad < cold_cad
        # ... and reports exactly the same Table II numbers.
        assert r2.candidate_count == r1.candidate_count
        assert r2.toolflow_seconds == r1.toolflow_seconds
        assert r2.reconfiguration_seconds == r1.reconfiguration_seconds
        assert [c.implementation.entity_name for c in r2.implementations] == [
            c.implementation.entity_name for c in r1.implementations
        ]
        assert any(c.from_cache for c in r2.implementations)
        assert not any(c.from_cache for c in r1.implementations)

    def test_parallel_jobs_matches_serial(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        tracer = enable_tracing()
        try:
            serial = AsipSpecializationProcess().run(module, profile)
            serial_spans = Counter(s.name for s in tracer.spans())
            tracer.reset()
            parallel = AsipSpecializationProcess(jobs=2).run(module, profile)
            parallel_spans = Counter(s.name for s in tracer.spans())
        finally:
            disable_tracing()

        assert parallel.candidate_count == serial.candidate_count
        assert parallel.toolflow_seconds == serial.toolflow_seconds
        assert parallel.reconfiguration_seconds == serial.reconfiguration_seconds
        assert len(parallel.failed) == len(serial.failed)
        assert [
            c.implementation.entity_name for c in parallel.implementations
        ] == [c.implementation.entity_name for c in serial.implementations]
        # Span-count parity: the prefetcher must not duplicate or drop
        # CAD stage spans relative to the serial assembly loop.
        for name in set(serial_spans) | set(parallel_spans):
            if name.startswith(("cad.", "asip_sp.")):
                assert parallel_spans[name] == serial_spans[name], name


def _manifest(run_id, cad_virtual, cad_count, cache, ratio=2.0):
    """Minimal ledger manifest for regression-sentinel unit tests."""
    return {
        "run_id": run_id,
        "status": "ok",
        "wall_seconds": 1.0,
        "config": {"domain": "embedded", "jobs": 1},
        "stages": {
            "cad.map": {
                "label": "Map",
                "spans": 4,
                "real_seconds": 0.01,
                "virtual_seconds": cad_virtual,
            }
        },
        "metrics": {"counters": {"cad.implementations": cad_count}},
        "scalars": {"suite": {"asip_ratio": ratio}},
        "cache": cache,
    }


class TestRegressCacheDemotion:
    def test_cad_cells_gate_when_cache_state_matches(self):
        report = compare_manifests(
            _manifest("a", 100.0, 5, None),
            _manifest("b", 90.0, 4, None),
        )
        assert not report.ok
        assert {d.cell for d in report.regressions} == {
            "stages.cad.map.virtual_seconds",
            "metrics.counters.cad.implementations",
        }

    def test_cad_cells_demote_when_cache_hits_differ(self):
        warm = {"hits": 22, "misses": 0, "stores": 0, "entries": 21}
        report = compare_manifests(
            _manifest("a", 100.0, 5, None),
            _manifest("b", 90.0, 0, warm),
        )
        assert report.ok
        # The demotion is surfaced as a (non-fatal) config note.
        assert any("cache" in note for note in report.config_mismatches)

    def test_demotion_never_covers_result_cells(self):
        warm = {"hits": 22, "misses": 0, "stores": 0, "entries": 21}
        report = compare_manifests(
            _manifest("a", 100.0, 5, None, ratio=2.0),
            _manifest("b", 90.0, 0, warm, ratio=1.5),
        )
        assert not report.ok
        assert {d.cell for d in report.regressions} == {
            "scalars.suite.asip_ratio"
        }

    def test_cache_cells_are_informational(self):
        cold = {"hits": 1, "misses": 21, "stores": 21, "entries": 21}
        warm = {"hits": 22, "misses": 0, "stores": 0, "entries": 21}
        report = compare_manifests(
            _manifest("a", 100.0, 5, cold),
            _manifest("b", 100.0, 5, warm),
        )
        assert report.ok
        cache_cells = [
            d for d in report.deltas if d.cell.startswith("cache.")
        ]
        assert cache_cells and not any(d.checked for d in cache_cells)


class TestCacheCli:
    def test_stats_and_clear(self, tmp_path, capsys, selected):
        from repro.cli import main

        toolflow = CadToolFlow()
        impl = toolflow.implement(selected[0].candidate)
        cache = PersistentBitstreamCache(root=tmp_path / "bc")
        cache.put(cache.key_for(selected[0].candidate, toolflow.device), impl)

        assert main(["cache", "stats", "--dir", str(tmp_path / "bc")]) == 0
        out = capsys.readouterr().out
        assert "entries:   1" in out

        assert main(["cache", "clear", "--dir", str(tmp_path / "bc")]) == 0
        out = capsys.readouterr().out
        assert "cleared 1" in out

        assert main(["cache", "stats", "--dir", str(tmp_path / "bc")]) == 0
        out = capsys.readouterr().out
        assert "entries:   0" in out

    def test_parser_accepts_parallel_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["analyze", "--domain", "embedded", "--jobs", "4", "--cache"]
        )
        assert args.jobs == 4 and args.cache == ".repro-cache"
        args = build_parser().parse_args(
            ["tables", "1", "--jobs", "2", "--backend", "thread"]
        )
        assert args.jobs == 2 and args.backend == "thread"
        args = build_parser().parse_args(["bench", "--jobs", "3"])
        assert args.jobs == 3 and args.out == "BENCH_parallel.json"


class TestSuiteLedgerDeterminism:
    def test_jobs4_manifest_is_cell_identical_to_serial(
        self, tmp_path, capsys
    ):
        """The acceptance criterion, end to end: a ledger-recorded
        ``analyze --domain embedded --jobs 4`` run must pass the
        regression sentinel against a serial baseline run."""
        from repro.cli import main
        from repro.experiments.runner import clear_cache

        ledger = str(tmp_path / "runs")
        clear_cache()
        assert (
            main(["analyze", "--domain", "embedded", "--ledger", ledger]) == 0
        )
        clear_cache()
        assert (
            main(
                [
                    "analyze",
                    "--domain",
                    "embedded",
                    "--jobs",
                    "4",
                    "--ledger",
                    ledger,
                ]
            )
            == 0
        )
        capsys.readouterr()

        manifests = sorted((tmp_path / "runs").glob("*/manifest.json"))
        assert len(manifests) == 2
        baseline, current = (
            json.loads(p.read_text(encoding="utf-8")) for p in manifests
        )
        assert current["config"].get("jobs") == 4
        report = compare_manifests(baseline, current)
        assert report.ok, report.render()
        # `jobs` is a volatile config key: parallel vs. serial runs are
        # comparable baselines without warnings.
        assert not report.config_mismatches


def test_docs_lint_passes():
    """The committed tree satisfies its own documentation lint."""
    script = Path(__file__).resolve().parent.parent / "scripts" / "docs_lint.py"
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
