"""Tests for IRBuilder construction and type checking."""

import pytest

from repro.ir import (
    F32,
    F64,
    I1,
    I32,
    I64,
    IRBuilder,
    Module,
    verify_function,
)
from repro.ir.opcodes import FCmpPred, ICmpPred, Opcode
from repro.ir.values import Constant


@pytest.fixture
def func_and_builder():
    m = Module("t")
    f = m.declare_function("f", I32, [("a", I32), ("b", I32), ("x", F64)])
    block = f.add_block("entry")
    return f, IRBuilder(block)


class TestArithmetic:
    def test_add_types_must_match(self, func_and_builder):
        f, b = func_and_builder
        with pytest.raises(TypeError):
            b.add(f.args[0], b.i64(1))

    def test_int_op_rejects_floats(self, func_and_builder):
        f, b = func_and_builder
        with pytest.raises(TypeError):
            b.add(f.args[2], b.f64(1.0))

    def test_float_op_rejects_ints(self, func_and_builder):
        f, b = func_and_builder
        with pytest.raises(TypeError):
            b.fadd(f.args[0], f.args[1])

    def test_result_types(self, func_and_builder):
        f, b = func_and_builder
        assert b.add(f.args[0], f.args[1]).type == I32
        assert b.fmul(f.args[2], b.f64(2.0)).type == F64

    def test_names_are_fresh(self, func_and_builder):
        f, b = func_and_builder
        v1 = b.add(f.args[0], f.args[1])
        v2 = b.add(v1, f.args[1])
        assert v1.name != v2.name


class TestComparisons:
    def test_icmp_produces_i1(self, func_and_builder):
        f, b = func_and_builder
        assert b.icmp(ICmpPred.SLT, f.args[0], f.args[1]).type == I1

    def test_fcmp_requires_floats(self, func_and_builder):
        f, b = func_and_builder
        with pytest.raises(TypeError):
            b.fcmp(FCmpPred.OLT, f.args[0], f.args[1])


class TestCasts:
    def test_valid_casts(self, func_and_builder):
        f, b = func_and_builder
        assert b.sext(f.args[0], I64).type == I64
        assert b.sitofp(f.args[0], F64).type == F64
        assert b.fptosi(f.args[2], I32).type == I32
        assert b.fptrunc(f.args[2]).type == F32

    def test_zext_must_widen(self, func_and_builder):
        f, b = func_and_builder
        with pytest.raises(TypeError):
            b.zext(f.args[0], I32)

    def test_trunc_must_narrow(self, func_and_builder):
        f, b = func_and_builder
        with pytest.raises(TypeError):
            b.trunc(f.args[0], I64)


class TestMemoryAndControl:
    def test_store_requires_pointer(self, func_and_builder):
        f, b = func_and_builder
        with pytest.raises(TypeError):
            b.store(f.args[0], f.args[1])

    def test_alloca_load_store(self, func_and_builder):
        f, b = func_and_builder
        slot = b.alloca(I32)
        b.store(f.args[0], slot)
        v = b.load(I32, slot)
        assert v.type == I32

    def test_gep_checks(self, func_and_builder):
        f, b = func_and_builder
        slot = b.alloca(I32, 4)
        gep = b.gep(slot, f.args[0], 4)
        assert gep.type.is_ptr
        with pytest.raises(ValueError):
            b.gep(slot, f.args[0], 0)
        with pytest.raises(TypeError):
            b.gep(f.args[0], f.args[1], 4)

    def test_condbr_requires_i1(self, func_and_builder):
        f, b = func_and_builder
        other = f.add_block("other")
        with pytest.raises(TypeError):
            b.condbr(f.args[0], other, other)

    def test_cannot_append_after_terminator(self, func_and_builder):
        f, b = func_and_builder
        b.ret(f.args[0])
        with pytest.raises(ValueError):
            b.add(f.args[0], f.args[1])

    def test_select_arms_must_match(self, func_and_builder):
        f, b = func_and_builder
        cond = b.icmp(ICmpPred.EQ, f.args[0], f.args[1])
        with pytest.raises(TypeError):
            b.select(cond, f.args[0], f.args[2])

    def test_call_arity_and_types(self, func_and_builder):
        f, b = func_and_builder
        m = f.parent
        callee = m.declare_function("g", I32, [("x", I32)])
        with pytest.raises(TypeError):
            b.call(callee, [])
        with pytest.raises(TypeError):
            b.call(callee, [f.args[2]])
        call = b.call(callee, [f.args[0]])
        assert call.type == I32

    def test_intrinsic_call_checked(self, func_and_builder):
        f, b = func_and_builder
        with pytest.raises(TypeError):
            b.call("sqrt", [f.args[0]])  # sqrt takes f64
        call = b.call("sqrt", [f.args[2]])
        assert call.type == F64

    def test_complete_function_verifies(self, func_and_builder):
        f, b = func_and_builder
        s = b.add(f.args[0], f.args[1])
        b.ret(s)
        verify_function(f)


class TestConstants:
    def test_constant_wrapping(self):
        c = Constant(I32, 2**31)
        assert c.value == -(2**31)

    def test_constant_equality_and_hash(self):
        assert Constant(I32, 5) == Constant(I32, 5)
        assert Constant(I32, 5) != Constant(I64, 5)
        assert Constant(F64, 0.0) != Constant(I32, 0)
        assert hash(Constant(I32, 5)) == hash(Constant(I32, 5))

    def test_phi_incoming_type_checked(self, func_and_builder):
        f, b = func_and_builder
        phi = b.phi(I32)
        with pytest.raises(TypeError):
            phi.add_incoming(b.f64(1.0), f.entry)
