"""Tests for the core JIT ISE system: ASIP-SP, break-even, cache,
extrapolation, end-to-end pipeline."""

import math

import pytest

from repro.core import (
    AsipSpecializationProcess,
    BitstreamCache,
    BreakEvenModel,
    CacheSimulation,
    JitIseSystem,
    extrapolate_break_even,
    render_figure1,
    render_figure2,
)
from repro.core.extrapolate import AppBreakEvenInputs
from repro.frontend import compile_source
from repro.profiling import classify_blocks
from repro.vm import Interpreter


@pytest.fixture(scope="module")
def app_setup():
    src = """
double a[64]; double b[64]; double c[64];
int main() {
    int n = dataset_size();
    if (n < 8) n = 8;
    if (n > 64) n = 64;
    srand(dataset_seed());
    for (int i = 0; i < 64; i++) { a[i] = 0.01 * (double)(rand() % 100); b[i] = 1.0; }
    double s = 0.0;
    for (int it = 0; it < 12; it++)
        for (int i = 0; i < n - 1; i++) {
            c[i] = a[i] * b[i] + a[i + 1] * 0.25 - b[i] / 3.0;
            s += c[i] * c[i];
        }
    print_f64(s);
    return 0;
}
"""
    comp = compile_source(src, "jitapp")
    module = comp.module
    p_train = Interpreter(module, dataset_size=48, dataset_seed=3).run("main").profile
    p_small = Interpreter(module, dataset_size=16, dataset_seed=5).run("main").profile
    coverage = classify_blocks(module, [p_train, p_small])
    report = AsipSpecializationProcess().run(module, p_train)
    return comp, module, p_train, coverage, report


class TestAsipSp:
    def test_report_aggregates(self, app_setup):
        _, module, profile, coverage, report = app_setup
        assert report.candidate_count >= 1
        assert report.toolflow_seconds == pytest.approx(
            report.const_seconds + report.map_seconds + report.par_seconds
        )
        assert report.total_overhead_seconds > report.toolflow_seconds

    def test_one_reconfiguration_per_candidate(self, app_setup):
        _, _, _, _, report = app_setup
        assert len(report.reconfigurations) == report.candidate_count
        assert report.reconfiguration_seconds < 1.0  # ms-scale each

    def test_structural_sharing_detected(self, app_setup):
        _, _, _, _, report = app_setup
        sigs = [ci.estimate.candidate.signature for ci in report.implementations]
        shared_flags = [ci.shared_with_signature for ci in report.implementations]
        # every repeated signature after the first must be marked shared
        seen = set()
        for sig, shared in zip(sigs, shared_flags):
            if sig in seen:
                assert shared
            else:
                assert not shared
                seen.add(sig)

    def test_constant_overheads_per_candidate(self, app_setup):
        _, _, _, _, report = app_setup
        for ci in report.implementations:
            assert 150 < ci.times.constant_sum < 220  # Table III ballpark


class TestBreakEven:
    def test_live_aware_finite_for_profitable_app(self, app_setup):
        _, module, profile, coverage, report = app_setup
        model = BreakEvenModel()
        analysis = model.analyze(
            module,
            profile,
            coverage,
            report.search.selected,
            report.total_overhead_seconds,
        )
        assert analysis.reachable
        assert analysis.live_aware_seconds > 0

    def test_break_even_monotone_in_overhead(self, app_setup):
        _, module, profile, coverage, report = app_setup
        model = BreakEvenModel()
        a1 = model.analyze(module, profile, coverage, report.search.selected, 100.0)
        a2 = model.analyze(module, profile, coverage, report.search.selected, 1000.0)
        assert a2.live_aware_seconds > a1.live_aware_seconds
        assert a2.simple_runs > a1.simple_runs

    def test_no_savings_never_breaks_even(self, app_setup):
        _, module, profile, coverage, _ = app_setup
        model = BreakEvenModel()
        analysis = model.analyze(module, profile, coverage, [], 1000.0)
        assert not analysis.reachable
        assert math.isinf(analysis.live_aware_seconds)

    def test_simple_model_consistency(self, app_setup):
        _, module, profile, coverage, report = app_setup
        model = BreakEvenModel()
        analysis = model.analyze(
            module, profile, coverage, report.search.selected, 500.0
        )
        assert analysis.simple_seconds == pytest.approx(
            analysis.simple_runs
            * (analysis.simple_seconds / analysis.simple_runs)
        )


class TestBitstreamCache:
    def test_hit_miss_accounting(self):
        cache = BitstreamCache()
        assert cache.get(42) is None
        from repro.fpga.bitgen import PartialBitstream

        bs = PartialBitstream("e", b"\x01", 1, 1, 100)
        cache.put(42, bs)
        assert cache.get(42) is bs
        assert cache.hits == 1 and cache.misses == 1
        assert 42 in cache and len(cache) == 1

    def test_simulation_full_hit_zero_cost(self, app_setup):
        _, _, _, _, report = app_setup
        sim = CacheSimulation()
        assert sim.effective_toolflow_seconds(report, 100.0) == 0.0

    def test_simulation_zero_hit_full_cost(self, app_setup):
        _, _, _, _, report = app_setup
        sim = CacheSimulation()
        assert sim.effective_toolflow_seconds(report, 0.0) == pytest.approx(
            sum(ci.times.total for ci in report.implementations)
        )

    def test_simulation_monotone_in_hit_rate(self, app_setup):
        _, _, _, _, report = app_setup
        sim = CacheSimulation()
        values = [
            sim.average_effective_seconds(report, hit, trials=8)
            for hit in (0, 30, 60, 90)
        ]
        assert values == sorted(values, reverse=True)

    def test_invalid_hit_rate_rejected(self, app_setup):
        _, _, _, _, report = app_setup
        with pytest.raises(ValueError):
            CacheSimulation().effective_toolflow_seconds(report, 120.0)


class TestExtrapolation:
    def test_grid_monotone_both_axes(self, app_setup):
        _, module, profile, coverage, report = app_setup
        inputs = [
            AppBreakEvenInputs(
                name="jitapp",
                module=module,
                profile=profile,
                coverage=coverage,
                estimates=report.search.selected,
                report=report,
                search_seconds=report.search.search_seconds,
                reconfig_seconds=report.reconfiguration_seconds,
            )
        ]
        grid = extrapolate_break_even(
            inputs, hit_rates=[0, 50, 90], cad_speedups=[0, 60], trials=4
        )
        for speedup in (0, 60):
            col = [grid.at(h, speedup) for h in (0, 50, 90)]
            assert col == sorted(col, reverse=True)
        for hit in (0, 50, 90):
            row = [grid.at(hit, s) for s in (0, 60)]
            assert row == sorted(row, reverse=True)


class TestEndToEnd:
    def test_jit_system_run(self):
        # fresh compilation: the system patches the module in place
        comp2 = compile_source(_SRC_AGAIN, "jitapp2")
        system = JitIseSystem()
        result = system.run_application(comp2)
        assert result.output_equal
        assert result.asip_ratio >= 1.0
        assert result.specialization.candidate_count >= 1
        assert result.runtime.vm_seconds > 0

    def test_figures_render(self):
        fig1 = render_figure1()
        fig2 = render_figure2()
        assert "Virtual Machine" in fig1 and "ASIP Specialization" in fig1
        assert "Candidate Search" in fig2 and "Partial Reconfiguration" in fig2
        assert "MAXMISO" in fig2


_SRC_AGAIN = """\
double a[64]; double b[64]; double c[64];
int main() {
    for (int i = 0; i < 64; i++) { a[i] = 0.02 * (double)i; b[i] = 1.25; }
    double s = 0.0;
    for (int it = 0; it < 10; it++)
        for (int i = 0; i < 63; i++) {
            c[i] = a[i] * b[i] + a[i + 1] * 0.5 - b[i] / 7.0;
            s += c[i] * c[i];
        }
    print_f64(s);
    return 0;
}
"""


