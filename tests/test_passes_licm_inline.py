"""Tests for LICM and inlining."""

import pytest

from repro.frontend import compile_source
from repro.ir import I32, IRBuilder, Module, verify_function, verify_module
from repro.ir.cfg import ControlFlowInfo
from repro.ir.opcodes import ICmpPred, Opcode
from repro.ir.passes import (
    InlinePass,
    LoopInvariantCodeMotionPass,
    Mem2RegPass,
    SimplifyCfgPass,
)
from repro.vm import Interpreter


def _loop_with_invariant():
    """for (i=0..n) acc += (a*b) + i; with a*b loop-invariant."""
    m = Module("t")
    f = m.declare_function("f", I32, [("n", I32), ("a", I32), ("b", I32)])
    entry = f.add_block("entry")
    cond = f.add_block("cond")
    body = f.add_block("body")
    done = f.add_block("done")
    bl = IRBuilder(entry)
    bl.br(cond)
    bl.set_block(cond)
    i_phi = bl.phi(I32, "i")
    acc_phi = bl.phi(I32, "acc")
    c = bl.icmp(ICmpPred.SLT, i_phi, f.args[0])
    bl.condbr(c, body, done)
    bl.set_block(body)
    inv = bl.mul(f.args[1], f.args[2])  # loop invariant
    acc2 = bl.add(acc_phi, bl.add(inv, i_phi))
    i2 = bl.add(i_phi, bl.i32(1))
    bl.br(cond)
    bl.set_block(done)
    bl.ret(acc_phi)
    i_phi.add_incoming(bl.i32(0), entry)
    i_phi.add_incoming(i2, body)
    acc_phi.add_incoming(bl.i32(0), entry)
    acc_phi.add_incoming(acc2, body)
    verify_function(f)
    return m, f


class TestLicm:
    def test_invariant_hoisted_to_preheader(self):
        m, f = _loop_with_invariant()
        changed = LoopInvariantCodeMotionPass().run(m)
        assert changed
        verify_function(f)
        entry_ops = [i.opcode for i in f.block_named("entry").instructions]
        assert Opcode.MUL in entry_ops
        body_ops = [i.opcode for i in f.block_named("body").instructions]
        assert Opcode.MUL not in body_ops

    def test_semantics_preserved(self):
        m, f = _loop_with_invariant()
        before = Interpreter(m).run("f", [5, 3, 4]).return_value
        LoopInvariantCodeMotionPass().run(m)
        after = Interpreter(m).run("f", [5, 3, 4]).return_value
        assert before == after == 5 * 12 + sum(range(5))

    def test_variant_not_hoisted(self):
        m, f = _loop_with_invariant()
        LoopInvariantCodeMotionPass().run(m)
        body_ops = [i.opcode for i in f.block_named("body").instructions]
        # the adds involving phis must stay in the loop
        assert body_ops.count(Opcode.ADD) == 3

    def test_division_never_hoisted(self):
        src = """
int main() {
    int acc = 0;
    int d = dataset_size();
    for (int i = 0; i < 4; i++) {
        if (d != 0) acc += 100 / d;
    }
    return acc;
}
"""
        module = compile_source(src, "divguard").module
        # run with d == 0: a hoisted division would trap
        result = Interpreter(module, dataset_size=0).run("main")
        assert result.return_value == 0


class TestInline:
    def test_small_callee_inlined(self):
        src = """
int sq(int x) { return x * x; }
int main() { return sq(5) + sq(6); }
"""
        module = compile_source(src, "inl", opt_level=0).module
        InlinePass().run(module)
        verify_module(module)
        main = module.function("main")
        assert all(i.opcode is not Opcode.CALL for i in main.instructions())
        assert Interpreter(module).run("main").return_value == 61

    def test_recursive_not_inlined(self):
        src = """
int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
int main() { return fact(5); }
"""
        module = compile_source(src, "rec", opt_level=0).module
        InlinePass().run(module)
        verify_module(module)
        fact = module.function("fact")
        assert any(i.opcode is Opcode.CALL for i in fact.instructions())
        assert Interpreter(module).run("main").return_value == 120

    def test_large_callee_not_inlined(self):
        body = "\n".join(f"    acc += x * {i};" for i in range(40))
        src = f"""
int big(int x) {{
    int acc = 0;
{body}
    return acc;
}}
int main() {{ return big(2); }}
"""
        module = compile_source(src, "big", opt_level=0).module
        InlinePass(size_threshold=20).run(module)
        main = module.function("main")
        assert any(i.opcode is Opcode.CALL for i in main.instructions())

    def test_multiple_returns_merge_through_phi(self):
        src = """
int pick(int x) {
    if (x > 0) return 1;
    return 2;
}
int main() { return pick(3) * 10 + pick(-3); }
"""
        module = compile_source(src, "multi", opt_level=0).module
        InlinePass().run(module)
        verify_module(module)
        assert Interpreter(module).run("main").return_value == 12

    def test_inlined_loops_preserved(self):
        src = """
int tri(int n) {
    int acc = 0;
    for (int i = 1; i <= n; i++) acc += i;
    return acc;
}
int main() { return tri(10); }
"""
        module = compile_source(src, "loops", opt_level=0).module
        InlinePass().run(module)
        verify_module(module)
        assert Interpreter(module).run("main").return_value == 55
