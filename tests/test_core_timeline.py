"""Tests for the concurrent-specialization timeline simulator."""

import math

import pytest

from repro.core import AsipSpecializationProcess, TimelineSimulator
from repro.frontend import compile_source
from repro.profiling import classify_blocks
from repro.vm import Interpreter


@pytest.fixture(scope="module")
def timeline_setup():
    src = """
double a[64]; double b[64];
int main() {
    int n = dataset_size();
    if (n < 8) n = 8;
    if (n > 64) n = 64;
    for (int i = 0; i < 64; i++) { a[i] = 0.01 * (double)i; b[i] = 1.5; }
    double s = 0.0;
    for (int it = 0; it < 10; it++)
        for (int i = 0; i < n - 1; i++)
            s += a[i] * b[i] + a[i + 1] * 0.3 - b[i] / 5.0;
    print_f64(s);
    return 0;
}
"""
    module = compile_source(src, "timeline").module
    p1 = Interpreter(module, dataset_size=48).run("main").profile
    p2 = Interpreter(module, dataset_size=16).run("main").profile
    coverage = classify_blocks(module, [p1, p2])
    report = AsipSpecializationProcess().run(module, p1)
    result = TimelineSimulator().simulate(module, p1, coverage, report)
    return module, p1, coverage, report, result


class TestTimeline:
    def test_events_ordered(self, timeline_setup):
        *_, result = timeline_setup
        times = [ev.time for ev in result.events]
        assert times == sorted(times)

    def test_search_then_bitstreams_then_activation(self, timeline_setup):
        *_, result = timeline_setup
        kinds = [ev.kind for ev in result.events]
        assert kinds[0] == "search"
        assert "bitstream" in kinds and "activate" in kinds

    def test_one_bitstream_event_per_candidate(self, timeline_setup):
        *_, report, result = timeline_setup
        n_bitstreams = sum(1 for ev in result.events if ev.kind == "bitstream")
        assert n_bitstreams == report.candidate_count

    def test_specialization_done_matches_toolflow_time(self, timeline_setup):
        *_, report, result = timeline_setup
        expected = report.search.search_seconds + report.toolflow_seconds
        assert result.specialization_done == pytest.approx(expected, rel=1e-6)

    def test_final_rate_above_one(self, timeline_setup):
        *_, result = timeline_setup
        assert result.final_rate > 1.0

    def test_rate_monotone_nondecreasing(self, timeline_setup):
        *_, result = timeline_setup
        rates = [
            float(ev.detail.split()[3].rstrip("x"))
            for ev in result.events
            if ev.kind == "activate"
        ]
        assert rates == sorted(rates)

    def test_dedicated_break_even_after_first_activation(self, timeline_setup):
        *_, result = timeline_setup
        if math.isfinite(result.dedicated_break_even):
            first_activation = min(
                ev.time for ev in result.events if ev.kind == "activate"
            )
            assert result.dedicated_break_even >= first_activation

    def test_self_hosted_later_or_equal_no_crossover_before_done(
        self, timeline_setup
    ):
        *_, result = timeline_setup
        if math.isfinite(result.self_hosted_break_even):
            # while sharing the CPU the app is BEHIND baseline; catching up
            # can only happen after specialization completes
            assert result.self_hosted_break_even >= result.specialization_done

    def test_event_log_renders(self, timeline_setup):
        *_, result = timeline_setup
        log = result.event_log()
        assert "search" in log and "activate" in log

    def test_no_candidates_yields_no_break_even(self, timeline_setup):
        module, profile, coverage, report, _ = timeline_setup
        import dataclasses

        empty = dataclasses.replace(
            report, implementations=[], reconfigurations=[]
        )
        result = TimelineSimulator().simulate(module, profile, coverage, empty)
        assert result.final_rate == 1.0
        assert math.isinf(result.dedicated_break_even)
        assert math.isinf(result.self_hosted_break_even)
