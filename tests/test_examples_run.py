"""The example scripts must run cleanly — they are the public quickstart."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        proc = _run("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "candidate search:" in proc.stdout
        assert "entity ci_" in proc.stdout
        assert "ASIP speedup" in proc.stdout

    def test_custom_kernel(self):
        proc = _run("custom_kernel.py")
        assert proc.returncode == 0, proc.stderr
        assert "maxmiso (paper)" in proc.stdout
        assert "single-cut enum" in proc.stdout

    def test_jit_embedded_app_on_sor(self):
        proc = _run("jit_embedded_app.py", "sor")
        assert proc.returncode == 0, proc.stderr
        assert "patched output identical" in proc.stdout
        assert "break-even" in proc.stdout

    def test_cache_study_on_sor(self):
        proc = _run("bitstream_cache_study.py", "sor")
        assert proc.returncode == 0, proc.stderr
        assert "Cache hit [%]" in proc.stdout
        assert "hit rate on re-run 100%" in proc.stdout or "hit rate" in proc.stdout
