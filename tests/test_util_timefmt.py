"""Tests for the paper-style time formatting helpers."""

import pytest

from repro.util.timefmt import (
    format_dhms,
    format_hhmmss,
    format_hms,
    format_ms,
    format_seconds,
    parse_hms,
)


class TestFormatting:
    def test_ms(self):
        assert format_ms(0.00144) == "1.44"

    def test_seconds(self):
        assert format_seconds(151.0) == "151.00"

    def test_hms_under_minute(self):
        assert format_hms(56) == "0:56"

    def test_hms_minutes_can_exceed_59(self):
        # Paper prints 87:52 meaning 87 minutes.
        assert format_hms(87 * 60 + 52) == "87:52"

    def test_dhms(self):
        assert format_dhms(206 * 86400 + 22 * 3600 + 15 * 60 + 50) == "206:22:15:50"

    def test_dhms_zero_days(self):
        assert format_dhms(4 * 3600 + 34 * 60 + 10) == "0:04:34:10"

    def test_hhmmss(self):
        assert format_hhmmss(1 * 3600 + 59 * 60 + 55) == "01:59:55"


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0:56", 56),
            ("87:52", 87 * 60 + 52),
            ("01:59:55", 3600 + 59 * 60 + 55),
            ("206:22:15:50", 206 * 86400 + 22 * 3600 + 15 * 60 + 50),
            ("42", 42),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_hms(text) == pytest.approx(expected)

    def test_round_trip(self):
        for seconds in (0, 59, 61, 3600, 86400 + 3661):
            assert parse_hms(format_dhms(seconds)) == seconds

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_hms("1:2:3:4:5")


class TestTableRenderer:
    def test_table_renders_rows_and_footer(self):
        from repro.util.tables import Table

        t = Table(columns=["App", "x"], title="T")
        t.add_row(["gzip", "1"])
        t.add_footer(["AVG", "1"])
        text = t.render()
        assert "App" in text and "gzip" in text and "AVG" in text

    def test_table_rejects_wrong_arity(self):
        from repro.util.tables import Table

        t = Table(columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(["only-one"])
        with pytest.raises(ValueError):
            t.add_footer(["1", "2", "3"])
