"""Tests for the paper-style time formatting helpers."""

import pytest

from repro.util.timefmt import (
    format_dhms,
    format_hhmmss,
    format_hms,
    format_ms,
    format_seconds,
    parse_hms,
)


class TestFormatting:
    def test_ms(self):
        assert format_ms(0.00144) == "1.44"

    def test_seconds(self):
        assert format_seconds(151.0) == "151.00"

    def test_hms_under_minute(self):
        assert format_hms(56) == "0:56"

    def test_hms_minutes_can_exceed_59(self):
        # Paper prints 87:52 meaning 87 minutes.
        assert format_hms(87 * 60 + 52) == "87:52"

    def test_dhms(self):
        assert format_dhms(206 * 86400 + 22 * 3600 + 15 * 60 + 50) == "206:22:15:50"

    def test_dhms_zero_days(self):
        assert format_dhms(4 * 3600 + 34 * 60 + 10) == "0:04:34:10"

    def test_hhmmss(self):
        assert format_hhmmss(1 * 3600 + 59 * 60 + 55) == "01:59:55"


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0:56", 56),
            ("87:52", 87 * 60 + 52),
            ("01:59:55", 3600 + 59 * 60 + 55),
            ("206:22:15:50", 206 * 86400 + 22 * 3600 + 15 * 60 + 50),
            ("42", 42),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_hms(text) == pytest.approx(expected)

    def test_round_trip(self):
        for seconds in (0, 59, 61, 3600, 86400 + 3661):
            assert parse_hms(format_dhms(seconds)) == seconds

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_hms("1:2:3:4:5")

    @pytest.mark.parametrize(
        "text",
        [
            "1:-5",  # negative component must not silently mis-parse
            "-3",
            "",
            "   ",
            "1::5",  # empty component
            ":30",
            "a:b",
            "1:5s",
            "inf",
            "1.5:00",  # fractional components are not in the paper's formats
        ],
    )
    def test_parse_rejects_malformed_components(self, text):
        with pytest.raises(ValueError):
            parse_hms(text)

    def test_parse_accepts_surrounding_whitespace(self):
        assert parse_hms(" 0:56 ") == 56


#: Boundary durations (seconds): zero, the 59/60 minute edge, the day edge,
#: and a multi-day value as in the paper's break-even column.
BOUNDARIES = [0, 1, 59, 60, 61, 3599, 3600, 86399, 86400, 2 * 86400 + 3661]


class TestRoundTrips:
    @pytest.mark.parametrize("seconds", BOUNDARIES)
    def test_dhms_round_trip(self, seconds):
        assert parse_hms(format_dhms(seconds)) == seconds

    @pytest.mark.parametrize("seconds", BOUNDARIES)
    def test_hhmmss_round_trip(self, seconds):
        assert parse_hms(format_hhmmss(seconds)) == seconds

    @pytest.mark.parametrize("seconds", BOUNDARIES)
    def test_hms_round_trip(self, seconds):
        # m:ss has no hour/day carry, so it round-trips every duration.
        assert parse_hms(format_hms(seconds)) == seconds

    def test_half_second_rounds_like_the_tables(self):
        assert parse_hms(format_hms(59.5)) == 60
        assert parse_hms(format_dhms(86399.5)) == 86400

    def test_infinite_durations_format_but_do_not_parse(self):
        # "inf"/"never" cells are compared symbolically, never parsed back.
        assert format_hms(float("inf")) == "inf"
        assert format_dhms(float("inf")) == "inf"
        with pytest.raises(ValueError):
            parse_hms("inf")


class TestTableRenderer:
    def test_table_renders_rows_and_footer(self):
        from repro.util.tables import Table

        t = Table(columns=["App", "x"], title="T")
        t.add_row(["gzip", "1"])
        t.add_footer(["AVG", "1"])
        text = t.render()
        assert "App" in text and "gzip" in text and "AVG" in text

    def test_table_rejects_wrong_arity(self):
        from repro.util.tables import Table

        t = Table(columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(["only-one"])
        with pytest.raises(ValueError):
            t.add_footer(["1", "2", "3"])
