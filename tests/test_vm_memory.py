"""Tests for the VM memory model."""

import pytest

from repro.ir import IRBuilder, Module
from repro.ir.types import F32, F64, I8, I16, I32, I64, PTR
from repro.ir.values import GlobalVariable
from repro.vm import Interpreter, VMError
from repro.vm.memory import Memory, MemoryError_


def make_memory(globals_=()):
    mem = Memory(size=1 << 16, stack_size=1 << 12)
    mem.place_globals(list(globals_))
    return mem


class TestScalars:
    @pytest.mark.parametrize(
        "ty,value",
        [
            (I8, -5),
            (I16, 1234),
            (I32, -(2**31)),
            (I64, 2**62),
            (F64, 3.141592653589793),
            (PTR, 4096),
        ],
    )
    def test_round_trip(self, ty, value):
        mem = make_memory()
        addr = mem.alloca(16)
        mem.store(addr, ty, value)
        assert mem.load(addr, ty) == value

    def test_f32_precision_squash(self):
        mem = make_memory()
        addr = mem.alloca(8)
        mem.store(addr, F32, 1.000000001)
        assert mem.load(addr, F32) == pytest.approx(1.0)

    def test_int_store_wraps(self):
        mem = make_memory()
        addr = mem.alloca(8)
        mem.store(addr, I8, 300)
        assert mem.load(addr, I8) == 300 - 256

    def test_null_page_protected(self):
        mem = make_memory()
        with pytest.raises(MemoryError_):
            mem.load(0, I32)
        with pytest.raises(MemoryError_):
            mem.store(4, I32, 1)

    def test_out_of_range(self):
        mem = make_memory()
        with pytest.raises(MemoryError_):
            mem.load(1 << 20, I32)


class TestGlobals:
    def test_layout_and_initializers(self):
        g1 = GlobalVariable("a", I32, 4, [1, 2, 3, 4])
        g2 = GlobalVariable("b", F64, 2, [0.5, 1.5])
        mem = make_memory([g1, g2])
        assert g1.address is not None and g2.address is not None
        assert g2.address >= g1.address + g1.size_bytes
        assert mem.read_array(g1.address, I32, 4) == [1, 2, 3, 4]
        assert mem.read_array(g2.address, F64, 2) == [0.5, 1.5]

    def test_alignment(self):
        g1 = GlobalVariable("odd", I8, 3)
        g2 = GlobalVariable("d", F64, 1)
        mem = make_memory([g1, g2])
        assert g2.address % 8 == 0

    def test_globals_placed_once(self):
        mem = make_memory()
        with pytest.raises(MemoryError_):
            mem.place_globals([])


class TestStackAndHeap:
    def test_frames_reuse_stack(self):
        mem = make_memory()
        token = mem.push_frame()
        a1 = mem.alloca(64)
        mem.pop_frame(token)
        token2 = mem.push_frame()
        a2 = mem.alloca(64)
        assert a1 == a2  # space was reclaimed

    def test_stack_overflow_detected(self):
        mem = make_memory()
        with pytest.raises(MemoryError_, match="stack overflow"):
            for _ in range(100):
                mem.alloca(1 << 10)

    def test_malloc_disjoint_from_stack(self):
        mem = make_memory()
        stack_addr = mem.alloca(32)
        heap_addr = mem.malloc(32)
        assert heap_addr > stack_addr
        mem.store(heap_addr, I64, 7)
        assert mem.load(heap_addr, I64) == 7

    def test_heap_exhaustion(self):
        mem = make_memory()
        with pytest.raises(MemoryError_, match="heap"):
            mem.malloc(1 << 22)

    def test_negative_malloc_rejected(self):
        mem = make_memory()
        with pytest.raises(MemoryError_):
            mem.malloc(-1)

    def test_alloca_aligned(self):
        mem = make_memory()
        mem.alloca(3)
        addr = mem.alloca(8)
        assert addr % 8 == 0


class TestErrorPaths:
    """Every fault class raises MemoryError_ with a diagnosable message."""

    def test_misaligned_load(self):
        mem = make_memory()
        addr = mem.alloca(16)  # 8-aligned
        with pytest.raises(MemoryError_, match="misaligned 4-byte"):
            mem.load(addr + 1, I32)

    def test_misaligned_store(self):
        mem = make_memory()
        addr = mem.alloca(16)
        with pytest.raises(MemoryError_, match="misaligned 8-byte"):
            mem.store(addr + 4, I64, 1)
        with pytest.raises(MemoryError_, match="misaligned 2-byte"):
            mem.store(addr + 3, I16, 1)

    def test_byte_access_never_misaligned(self):
        mem = make_memory()
        addr = mem.alloca(16)
        mem.store(addr + 3, I8, 7)
        assert mem.load(addr + 3, I8) == 7

    def test_naturally_aligned_access_passes(self):
        mem = make_memory()
        addr = mem.alloca(16)
        mem.store(addr + 4, I32, 9)
        assert mem.load(addr + 4, I32) == 9

    def test_oob_store_past_end(self):
        mem = make_memory()
        with pytest.raises(MemoryError_, match="out of range"):
            mem.store(mem.size - 2, I32, 1)  # aligned start, 2 bytes past end

    def test_oob_load_past_end(self):
        mem = make_memory()
        with pytest.raises(MemoryError_, match="out of range"):
            mem.load(mem.size, I8)

    def test_heap_oom_message_names_request(self):
        mem = make_memory()
        with pytest.raises(MemoryError_, match=r"heap exhausted \(requested"):
            mem.malloc(mem.size)


class TestInterpreterFaultTranslation:
    """Memory faults escaping a call frame surface as VMError (with the
    function name), never as a raw MemoryError_."""

    @staticmethod
    def _faulting_module(elem_size: int, index: int) -> Module:
        """fault() loads an I32 through ``gep(buf, index, elem_size)``."""
        m = Module("fault")
        m.add_global("buf", I8, 16, [0] * 16)
        f = m.declare_function("fault", I32, [])
        b = IRBuilder(f.add_block("entry"))
        p = b.gep(m.globals["buf"], b.i32(index), elem_size)
        b.ret(b.load(I32, p))
        return m

    def test_misaligned_access_becomes_vmerror(self):
        module = self._faulting_module(elem_size=1, index=1)  # buf+1, 4 bytes
        with pytest.raises(VMError, match="fault: misaligned 4-byte"):
            Interpreter(module).run("fault")

    def test_out_of_bounds_access_becomes_vmerror(self):
        module = self._faulting_module(elem_size=8, index=1 << 24)
        with pytest.raises(VMError, match="fault: .*out of range"):
            Interpreter(module).run("fault")
