"""Tests for DCE, CSE and simplify-CFG."""

import pytest

from repro.ir import I32, IRBuilder, Module, verify_function
from repro.ir.opcodes import ICmpPred, Opcode
from repro.ir.passes import (
    CommonSubexpressionEliminationPass,
    DeadCodeEliminationPass,
    SimplifyCfgPass,
)
from repro.vm import Interpreter


class TestDce:
    def test_removes_unused_pure_instruction(self):
        m = Module("t")
        f = m.declare_function("f", I32, [("a", I32)])
        b = IRBuilder(f.add_block("entry"))
        b.mul(f.args[0], f.args[0])  # dead
        live = b.add(f.args[0], b.i32(1))
        b.ret(live)
        DeadCodeEliminationPass().run(m)
        assert all(i.opcode is not Opcode.MUL for i in f.instructions())

    def test_removes_transitively_dead_chains(self):
        m = Module("t")
        f = m.declare_function("f", I32, [("a", I32)])
        b = IRBuilder(f.add_block("entry"))
        t1 = b.add(f.args[0], b.i32(1))
        t2 = b.mul(t1, t1)
        b.xor(t2, t2)  # dead root; t1/t2 become dead transitively
        b.ret(f.args[0])
        DeadCodeEliminationPass().run(m)
        assert f.instruction_count == 1  # just the ret

    def test_keeps_side_effecting_instructions(self):
        m = Module("t")
        f = m.declare_function("f", I32, [("a", I32)])
        b = IRBuilder(f.add_block("entry"))
        slot = b.alloca(I32)
        b.store(f.args[0], slot)  # store has a side effect
        b.call("print_i32", [f.args[0]])  # unused result/void call
        b.ret(f.args[0])
        DeadCodeEliminationPass().run(m)
        ops = [i.opcode for i in f.instructions()]
        assert Opcode.STORE in ops and Opcode.CALL in ops


class TestCse:
    def test_identical_expressions_merged(self):
        m = Module("t")
        f = m.declare_function("f", I32, [("a", I32), ("b", I32)])
        bl = IRBuilder(f.add_block("entry"))
        x = bl.add(f.args[0], f.args[1])
        y = bl.add(f.args[0], f.args[1])
        bl.ret(bl.mul(x, y))
        CommonSubexpressionEliminationPass().run(m)
        DeadCodeEliminationPass().run(m)
        adds = [i for i in f.instructions() if i.opcode is Opcode.ADD]
        assert len(adds) == 1

    def test_commutative_canonicalisation(self):
        m = Module("t")
        f = m.declare_function("f", I32, [("a", I32), ("b", I32)])
        bl = IRBuilder(f.add_block("entry"))
        x = bl.add(f.args[0], f.args[1])
        y = bl.add(f.args[1], f.args[0])  # same value, swapped operands
        bl.ret(bl.mul(x, y))
        CommonSubexpressionEliminationPass().run(m)
        DeadCodeEliminationPass().run(m)
        adds = [i for i in f.instructions() if i.opcode is Opcode.ADD]
        assert len(adds) == 1

    def test_sub_not_commuted(self):
        m = Module("t")
        f = m.declare_function("f", I32, [("a", I32), ("b", I32)])
        bl = IRBuilder(f.add_block("entry"))
        x = bl.sub(f.args[0], f.args[1])
        y = bl.sub(f.args[1], f.args[0])
        bl.ret(bl.mul(x, y))
        CommonSubexpressionEliminationPass().run(m)
        subs = [i for i in f.instructions() if i.opcode is Opcode.SUB]
        assert len(subs) == 2

    def test_loads_never_csed(self):
        m = Module("t")
        f = m.declare_function("f", I32, [])
        bl = IRBuilder(f.add_block("entry"))
        slot = bl.alloca(I32, 4)
        v1 = bl.load(I32, slot)
        bl.store(bl.i32(5), slot)
        v2 = bl.load(I32, slot)  # must NOT merge with v1
        bl.ret(bl.add(v1, v2))
        CommonSubexpressionEliminationPass().run(m)
        loads = [i for i in f.instructions() if i.opcode is Opcode.LOAD]
        assert len(loads) == 2

    def test_dominating_definition_reused_across_blocks(self):
        m = Module("t")
        f = m.declare_function("f", I32, [("a", I32)])
        entry = f.add_block("entry")
        nxt = f.add_block("next")
        bl = IRBuilder(entry)
        x = bl.add(f.args[0], bl.i32(7))
        bl.br(nxt)
        bl.set_block(nxt)
        y = bl.add(f.args[0], bl.i32(7))
        bl.ret(bl.mul(x, y))
        CommonSubexpressionEliminationPass().run(m)
        DeadCodeEliminationPass().run(m)
        adds = [i for i in f.instructions() if i.opcode is Opcode.ADD]
        assert len(adds) == 1
        verify_function(f)


class TestSimplifyCfg:
    def _branchy(self, cond_value: bool):
        m = Module("t")
        f = m.declare_function("f", I32, [("a", I32)])
        entry = f.add_block("entry")
        then = f.add_block("then")
        els = f.add_block("els")
        bl = IRBuilder(entry)
        from repro.ir.values import Constant
        from repro.ir.types import I1

        bl.condbr(Constant(I1, int(cond_value)), then, els)
        bl.set_block(then)
        bl.ret(bl.i32(1))
        bl.set_block(els)
        bl.ret(bl.i32(2))
        return m, f

    def test_constant_branch_folded_true(self):
        m, f = self._branchy(True)
        SimplifyCfgPass().run(m)
        verify_function(f)
        assert Interpreter(m).run("f", [0]).return_value == 1
        assert len(f.blocks) == 1  # entry merged with then, els removed

    def test_constant_branch_folded_false(self):
        m, f = self._branchy(False)
        SimplifyCfgPass().run(m)
        assert Interpreter(m).run("f", [0]).return_value == 2

    def test_unreachable_block_removed_and_phis_updated(self):
        m = Module("t")
        f = m.declare_function("f", I32, [("a", I32)])
        entry = f.add_block("entry")
        dead = f.add_block("dead")
        join = f.add_block("join")
        bl = IRBuilder(entry)
        bl.br(join)
        bl.set_block(dead)
        deadval = bl.add(f.args[0], bl.i32(9))
        bl.br(join)
        bl.set_block(join)
        phi = bl.phi(I32)
        phi.add_incoming(f.args[0], entry)
        phi.add_incoming(deadval, dead)
        bl.ret(phi)
        SimplifyCfgPass().run(m)
        verify_function(f)
        assert all(b.name != "dead" for b in f.blocks)

    def test_straightline_blocks_merged(self):
        m = Module("t")
        f = m.declare_function("f", I32, [("a", I32)])
        b1 = f.add_block("b1")
        b2 = f.add_block("b2")
        b3 = f.add_block("b3")
        bl = IRBuilder(b1)
        x = bl.add(f.args[0], bl.i32(1))
        bl.br(b2)
        bl.set_block(b2)
        y = bl.add(x, bl.i32(2))
        bl.br(b3)
        bl.set_block(b3)
        bl.ret(y)
        SimplifyCfgPass().run(m)
        assert len(f.blocks) == 1
        verify_function(f)
        assert Interpreter(m).run("f", [1]).return_value == 4
