"""Tests for multi-translation-unit compilation (compile_files)."""

import pytest

from repro.frontend import CompileError, compile_files
from repro.vm import Interpreter


class TestCrossFileReferences:
    def test_functions_and_globals_visible_across_files(self):
        lib = """
int counter = 0;
int bump(int by) { counter += by; return counter; }
"""
        main = """
int main() {
    bump(3);
    bump(4);
    return counter;
}
"""
        result = compile_files([("lib.c", lib), ("main.c", main)], "multi")
        assert result.files == 2
        assert Interpreter(result.module).run("main").return_value == 7

    def test_order_independent(self):
        a = "int helper() { return shared * 2; }"
        b = "int shared = 21;\nint main() { return helper(); }"
        for order in ([("a.c", a), ("b.c", b)], [("b.c", b), ("a.c", a)]):
            result = compile_files(order, f"order{order[0][0]}")
            assert Interpreter(result.module).run("main").return_value == 42

    def test_duplicate_function_across_files_rejected(self):
        a = "int f() { return 1; }"
        b = "int f() { return 2; }\nint main() { return f(); }"
        with pytest.raises(Exception, match="duplicate"):
            compile_files([("a.c", a), ("b.c", b)], "dup")

    def test_duplicate_global_across_files_rejected(self):
        a = "int g = 1;"
        b = "int g = 2;\nint main() { return g; }"
        with pytest.raises(Exception, match="duplicate"):
            compile_files([("a.c", a), ("b.c", b)], "dupg")

    def test_loc_summed_across_files(self):
        a = "int x = 1;\nint y = 2;\n"
        b = "int main() { return x + y; }\n"
        result = compile_files([("a.c", a), ("b.c", b)], "locs")
        assert result.loc == 3

    def test_pass_timings_recorded(self):
        result = compile_files(
            [("m.c", "int main() { return 1 + 2; }")], "timed"
        )
        names = [name for name, _ in result.pass_timings]
        assert "mem2reg" in names
        assert "dce" in names
        assert all(t >= 0 for _, t in result.pass_timings)


class TestEstimatorAndCandidateCorners:
    def test_candidate_repr_and_key(self, fp_kernel_profile):
        from repro.ise import CandidateSearch

        module, profile, _ = fp_kernel_profile
        search = CandidateSearch().run(module, profile)
        cand = search.selected[0].candidate
        assert cand.key == (cand.function, cand.block, cand.index)
        assert "Candidate" in repr(cand)

    def test_netlist_stats(self):
        from repro.pivpav.netlist import generate_core_netlist

        nl = generate_core_netlist("test_core", 160, 80, 2, 1)
        stats = nl.stats
        assert stats["LUT4"] == 10
        assert stats["FDRE"] == 5
        assert stats["DSP48"] == 2
        assert stats["RAMB16"] == 1
        assert stats["nets"] > 0 and stats["ports"] > 0

    def test_asip_sp_const_accounting(self, fp_kernel_profile):
        from repro.core import AsipSpecializationProcess

        module, profile, _ = fp_kernel_profile
        report = AsipSpecializationProcess().run(module, profile)
        # const column equals the sum of the five constant stages
        manual = sum(
            ci.times.c2v + ci.times.syn + ci.times.xst + ci.times.tra + ci.times.bitgen
            for ci in report.implementations
        )
        assert report.const_seconds == pytest.approx(manual)
