"""Tests for the experiment drivers (table generators and runner)."""

import math

import pytest

from repro.experiments import analyze_app, generate_figures
from repro.experiments.table1 import Table1, Table1Row, row_for
from repro.experiments.table2 import Table2, Table2Row
from repro.experiments.table2 import row_for as t2_row_for
from repro.util.timefmt import parse_hms


@pytest.fixture(scope="module")
def sor_analysis():
    return analyze_app("sor")


class TestRunner:
    def test_analysis_bundle_complete(self, sor_analysis):
        a = sor_analysis
        assert a.name == "sor" and a.domain == "embedded"
        assert set(a.profiles) == {"train", "small", "large"}
        assert a.runtime.vm_seconds > 0
        assert a.asip_max.ratio >= a.asip_pruned.ratio - 1e-6
        assert a.kernel.freq_pct >= 90.0
        assert a.coverage.live_pct > 0
        assert a.specialization.candidate_count >= 1
        assert a.breakeven.overhead_seconds > 0

    def test_cache_returns_same_object(self, sor_analysis):
        assert analyze_app("sor") is sor_analysis

    def test_cache_keyed_on_full_parameter_tuple(self, sor_analysis):
        # Regression test: the cache used to key on the app name alone, so
        # an analysis under a different pruning filter returned the stale
        # default-config result instead of re-running.
        from repro.ise.pruning import PruningFilter

        loose = PruningFilter(time_share_pct=90.0, max_blocks=8)
        relaxed = analyze_app("sor", pruning=loose)
        assert relaxed is not sor_analysis
        assert relaxed.search_pruned.pruned_blocks != (
            sor_analysis.search_pruned.pruned_blocks
        )
        # Both configurations stay cached side by side.
        assert analyze_app("sor", pruning=loose) is relaxed
        assert analyze_app("sor") is sor_analysis

    def test_pruning_efficiency_positive(self, sor_analysis):
        assert sor_analysis.pruning_efficiency > 0


class TestTable1Rendering:
    def _fake_rows(self):
        rows = []
        for i, (name, domain) in enumerate(
            [("app.sci", "scientific"), ("app.emb", "embedded")]
        ):
            rows.append(
                Table1Row(
                    app=name,
                    domain=domain,
                    files=2,
                    loc=100 + i,
                    compile_s=0.5,
                    blocks=50,
                    instructions=300,
                    vm_s=1.0,
                    native_s=0.9,
                    vm_ratio=1.11,
                    asip_ratio=2.0 + i,
                    live_pct=50.0,
                    dead_pct=30.0,
                    const_pct=20.0,
                    kernel_size_pct=15.0,
                    kernel_freq_pct=93.0,
                    kernel_instructions=45,
                )
            )
        return rows

    def test_render_contains_summary_rows(self):
        table = Table1(rows=self._fake_rows())
        text = table.render()
        assert "AVG-S" in text and "AVG-E" in text and "RATIO" in text
        assert "app.sci" in text and "app.emb" in text

    def test_ratio_row_is_avgs_over_avge(self):
        table = Table1(rows=self._fake_rows())
        ratio = table.ratio_row()
        assert ratio["asip_ratio"] == pytest.approx(2.0 / 3.0)

    def test_row_from_analysis(self, sor_analysis):
        row = row_for(sor_analysis)
        assert row.app == "sor"
        assert row.live_pct + row.dead_pct + row.const_pct == pytest.approx(
            100.0
        )


class TestTable2Rendering:
    def test_row_and_render(self, sor_analysis):
        row = t2_row_for(sor_analysis)
        assert row.candidates == sor_analysis.specialization.candidate_count
        assert row.sum_s == pytest.approx(
            row.const_s + row.map_s + row.par_s
        )
        table = Table2(rows=[row])
        text = table.render()
        assert "sor" in text and "break even" in text

    def test_infinite_break_even_renders_never(self, sor_analysis):
        row = t2_row_for(sor_analysis)
        row.break_even_s = math.inf
        text = Table2(rows=[row]).render()
        assert "never" in text

    def test_break_even_cell_parses_back(self, sor_analysis):
        row = t2_row_for(sor_analysis)
        if math.isfinite(row.break_even_s):
            from repro.util.timefmt import format_dhms

            cell = format_dhms(row.break_even_s)
            assert parse_hms(cell) == pytest.approx(row.break_even_s, abs=1.0)


class TestFigures:
    def test_both_figures_generated(self):
        figs = generate_figures()
        assert set(figs) == {"figure1", "figure2"}
        assert "bitcode" in figs["figure1"]
        assert "PivPav" in figs["figure2"]
