"""Hypothesis property tests on IR semantics and optimizer correctness.

The central invariant: for randomly generated MiniC expression programs,
the optimized module computes the same result as the unoptimized one, and
arithmetic matches a Python reference evaluator with C semantics.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.ir.opcodes import Opcode
from repro.ir.types import I32, wrap_int
from repro.ir.passes.constfold import fold_binary
from repro.vm import Interpreter


ints = st.integers(min_value=-(2**31), max_value=2**31 - 1)
small_ints = st.integers(min_value=-1000, max_value=1000)


class TestFoldMatchesPython:
    @given(a=ints, b=ints)
    def test_add_wraps_like_c(self, a, b):
        assert fold_binary(Opcode.ADD, I32, a, b) == wrap_int(a + b, I32)

    @given(a=ints, b=ints)
    def test_mul_wraps_like_c(self, a, b):
        assert fold_binary(Opcode.MUL, I32, a, b) == wrap_int(a * b, I32)

    @given(a=ints, b=ints.filter(lambda v: v != 0))
    def test_sdiv_truncates(self, a, b):
        expected = wrap_int(int(a / b), I32)
        assert fold_binary(Opcode.SDIV, I32, a, b) == expected

    @given(a=ints, b=ints.filter(lambda v: v != 0))
    def test_div_rem_identity(self, a, b):
        q = fold_binary(Opcode.SDIV, I32, a, b)
        r = fold_binary(Opcode.SREM, I32, a, b)
        assert wrap_int(q * b + r, I32) == wrap_int(a, I32)

    @given(a=ints, b=st.integers(min_value=0, max_value=31))
    def test_shl_lshr(self, a, b):
        shifted = fold_binary(Opcode.SHL, I32, a, b)
        assert shifted == wrap_int(a << b, I32)


# -- random expression programs ------------------------------------------------
@st.composite
def int_expr(draw, depth=0):
    """A random MiniC integer expression over variables a, b, c."""
    if depth >= 3 or draw(st.booleans()):
        leaf = draw(
            st.sampled_from(["a", "b", "c", str(draw(small_ints))])
        )
        return leaf if not leaf.startswith("-") else f"({leaf})"
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    lhs = draw(int_expr(depth=depth + 1))
    rhs = draw(int_expr(depth=depth + 1))
    return f"({lhs} {op} {rhs})"


def _reference_eval(expr: str, a: int, b: int, c: int) -> int:
    value = eval(expr, {}, {"a": a, "b": b, "c": c})  # noqa: S307 - test only
    return wrap_int(value, I32)


class TestOptimizerEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(expr=int_expr(), a=small_ints, b=small_ints, c=small_ints)
    def test_compiled_matches_reference(self, expr, a, b, c):
        src = f"""
int compute(int a, int b, int c) {{ return {expr}; }}
int main() {{ return 0; }}
"""
        module_o2 = compile_source(src, "prop", opt_level=2).module
        module_o0 = compile_source(src, "prop0", opt_level=0).module
        r2 = Interpreter(module_o2).run("compute", [a, b, c]).return_value
        r0 = Interpreter(module_o0).run("compute", [a, b, c]).return_value
        ref = _reference_eval(expr, a, b, c)
        assert r0 == ref
        assert r2 == ref

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=30),
        mul=st.integers(min_value=-5, max_value=5),
        add=st.integers(min_value=-5, max_value=5),
    )
    def test_loop_programs_equivalent_across_opt_levels(self, n, mul, add):
        src = f"""
int compute(int n) {{
    int acc = 0;
    for (int i = 0; i < n; i++) {{
        acc += i * ({mul}) + ({add});
        if (acc > 10000) break;
    }}
    return acc;
}}
int main() {{ return 0; }}
"""
        results = []
        for level in (0, 1, 2):
            module = compile_source(src, f"lp{level}", opt_level=level).module
            results.append(Interpreter(module).run("compute", [n]).return_value)
        assert results[0] == results[1] == results[2]


class TestVerifierInvariance:
    @settings(max_examples=25, deadline=None)
    @given(expr=int_expr())
    def test_pipeline_preserves_verification(self, expr):
        from repro.ir.verifier import verify_module

        src = f"""
int f(int a, int b, int c) {{ return {expr}; }}
int g(int a) {{ if (a > 0) return f(a, a, a); return -a; }}
int main() {{ return g(3); }}
"""
        module = compile_source(src, "ver", opt_level=2).module
        verify_module(module)  # compile_source verifies too; belt and braces
