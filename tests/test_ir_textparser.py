"""Tests for the IR printer/parser round trip."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.ir import IrParseError, parse_module, print_module, verify_module
from repro.vm import Interpreter

from conftest import build_sumsq_module


def round_trip(module):
    text1 = print_module(module)
    module2 = parse_module(text1)
    verify_module(module2)
    text2 = print_module(module2)
    return module2, text1, text2


class TestRoundTrip:
    def test_handbuilt_module(self):
        module = build_sumsq_module()
        m2, t1, t2 = round_trip(module)
        assert t1 == t2
        assert Interpreter(m2).run("sumsq", [10]).return_value == 285

    def test_optimized_module(self):
        module = build_sumsq_module()
        from repro.ir.passes import standard_pipeline

        standard_pipeline(2).run(module)
        m2, t1, t2 = round_trip(module)
        assert t1 == t2
        assert Interpreter(m2).run("sumsq", [7]).return_value == 91

    def test_full_language_features(self):
        src = """
double table[3] = {0.5, 1.5, -2.5};
int flag = 1;
double mix(double x, int k) {
    if (k > 0 && x > 0.0) return x * table[k % 3];
    return -x;
}
int main() {
    double acc = 0.0;
    for (int i = 0; i < 6; i++) acc += mix((double)i, i);
    print_f64(acc);
    long wide = 5000000000;
    print_i64(wide / 2);
    return (int)acc;
}
"""
        module = compile_source(src, "features").module
        m2, t1, t2 = round_trip(module)
        assert t1 == t2
        assert (
            Interpreter(m2).run("main").output
            == Interpreter(module).run("main").output
        )

    def test_app_module_round_trips(self):
        from repro.apps import compile_app, get_app

        module = compile_app(get_app("sor")).module
        m2, t1, t2 = round_trip(module)
        assert t1 == t2
        r1 = Interpreter(module, dataset_size=10).run("main")
        r2 = Interpreter(m2, dataset_size=10).run("main")
        assert r1.output == r2.output

    def test_patched_module_round_trips(self, fp_kernel_profile):
        from repro.ise import CandidateSearch
        from repro.vm.patcher import BinaryPatcher

        module, profile, _ = fp_kernel_profile
        search = CandidateSearch().run(module, profile)
        BinaryPatcher().patch_module(module, search.candidates())
        m2, t1, t2 = round_trip(module)
        assert t1 == t2
        assert "custom f64 #" in t1


class TestErrors:
    def test_missing_module_header(self):
        with pytest.raises(IrParseError, match="module"):
            parse_module("define i32 @f() {\nentry:\n  ret i32 0\n}")

    def test_bad_global(self):
        with pytest.raises(IrParseError, match="bad global"):
            parse_module("; module m\n@x = global banana")

    def test_undefined_value(self):
        text = """; module m

define i32 @f(i32 %a) {
entry:
  ret i32 %ghost
}"""
        with pytest.raises(IrParseError, match="undefined value"):
            parse_module(text)

    def test_instruction_outside_block(self):
        text = """; module m

define i32 @f(i32 %a) {
  ret i32 %a
}"""
        with pytest.raises(IrParseError, match="outside block"):
            parse_module(text)


@st.composite
def expr_source(draw):
    ops = ["+", "-", "*", "&", "|", "^"]
    expr = "a"
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        op = draw(st.sampled_from(ops))
        term = draw(st.sampled_from(["a", "b", "3", "17"]))
        expr = f"({expr} {op} {term})"
    return f"int f(int a, int b) {{ return {expr}; }}\nint main() {{ return f(3, 4); }}"


class TestRoundTripProperty:
    @settings(max_examples=25, deadline=None)
    @given(src=expr_source())
    def test_random_programs_round_trip(self, src):
        module = compile_source(src, "prop").module
        m2, t1, t2 = round_trip(module)
        assert t1 == t2
        assert (
            Interpreter(m2).run("main").return_value
            == Interpreter(module).run("main").return_value
        )
