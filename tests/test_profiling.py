"""Tests for coverage classification and kernel analysis."""

import pytest

from repro.frontend import compile_source
from repro.profiling import BlockClass, classify_blocks, compute_kernel
from repro.vm import Interpreter

SRC = """
int table[16];

// executes once per run regardless of input (const)
void setup() {
    for (int i = 0; i < 16; i++) table[i] = i;
}

// never called (dead)
int error_path(int code) { print_i32(code); return -code; }

int main() {
    int n = dataset_size();
    if (n < 0) return error_path(1);
    setup();
    int acc = 0;
    for (int i = 0; i < n; i++) acc += table[i & 15];  // live loop
    return acc;
}
"""


@pytest.fixture
def coverage_setup():
    module = compile_source(SRC, "cov").module
    p1 = Interpreter(module, dataset_size=10).run("main").profile
    p2 = Interpreter(module, dataset_size=30).run("main").profile
    return module, [p1, p2]


class TestCoverage:
    def test_classes_partition_all_blocks(self, coverage_setup):
        module, profiles = coverage_setup
        cov = classify_blocks(module, profiles)
        total_blocks = sum(len(f.blocks) for f in module.defined_functions())
        assert len(cov.classes) == total_blocks

    def test_dead_function_blocks_are_dead(self, coverage_setup):
        module, profiles = coverage_setup
        cov = classify_blocks(module, profiles)
        for key, cls in cov.classes.items():
            if key[0] == "error_path":
                assert cls is BlockClass.DEAD

    def test_const_blocks_exist(self, coverage_setup):
        # The setup loop runs a fixed 16 iterations regardless of dataset
        # size (it may have been inlined into main, so look by class, not by
        # function name).
        module, profiles = coverage_setup
        cov = classify_blocks(module, profiles)
        const_blocks = cov.blocks_of_class(BlockClass.CONST)
        assert const_blocks
        for key in const_blocks:
            counts = [p.count_of(*key) for p in profiles]
            assert counts[0] == counts[1] > 0

    def test_live_loop_detected(self, coverage_setup):
        module, profiles = coverage_setup
        cov = classify_blocks(module, profiles)
        live = cov.blocks_of_class(BlockClass.LIVE)
        assert any(key[0] == "main" for key in live)

    def test_percentages_sum_to_100(self, coverage_setup):
        module, profiles = coverage_setup
        cov = classify_blocks(module, profiles)
        assert cov.live_pct + cov.dead_pct + cov.const_pct == pytest.approx(100.0)

    def test_single_profile_all_const_or_dead(self, coverage_setup):
        module, profiles = coverage_setup
        cov = classify_blocks(module, [profiles[0]])
        assert not cov.blocks_of_class(BlockClass.LIVE)

    def test_empty_profile_list_rejected(self, coverage_setup):
        module, _ = coverage_setup
        with pytest.raises(ValueError):
            classify_blocks(module, [])


class TestKernel:
    def test_kernel_covers_at_least_threshold(self, coverage_setup):
        module, profiles = coverage_setup
        kern = compute_kernel(module, profiles[1], threshold=0.90)
        assert kern.time_share >= 0.90
        assert kern.freq_pct >= 90.0

    def test_kernel_is_minimal_prefix(self, coverage_setup):
        module, profiles = coverage_setup
        kern = compute_kernel(module, profiles[1], threshold=0.90)
        # removing the last (coldest) kernel block must drop below threshold
        if len(kern.blocks) > 1:
            smaller = compute_kernel(module, profiles[1], threshold=0.50)
            assert len(smaller.blocks) <= len(kern.blocks)

    def test_kernel_size_pct_bounds(self, coverage_setup):
        module, profiles = coverage_setup
        kern = compute_kernel(module, profiles[1])
        assert 0.0 < kern.size_pct <= 100.0
        assert kern.kernel_instructions <= kern.total_instructions

    def test_hot_loop_block_in_kernel(self, coverage_setup):
        module, profiles = coverage_setup
        kern = compute_kernel(module, profiles[1])
        assert any(key[0] == "main" for key in kern.blocks)

    def test_threshold_validation(self, coverage_setup):
        module, profiles = coverage_setup
        with pytest.raises(ValueError):
            compute_kernel(module, profiles[0], threshold=0.0)
        with pytest.raises(ValueError):
            compute_kernel(module, profiles[0], threshold=1.5)

    def test_empty_profile_yields_empty_kernel(self, coverage_setup):
        module, _ = coverage_setup
        from repro.vm.profiler import ExecutionProfile

        kern = compute_kernel(module, ExecutionProfile("cov"))
        assert kern.blocks == [] and kern.time_share == 0.0
