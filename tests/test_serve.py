"""Tests for the specialization daemon (``repro serve``) and its plumbing.

Covers the serve plane of Section III's online premise: the framed-JSON
socket protocol, the shared multi-tenant bitstream store's single-flight
dedup (N concurrent equal-signature requests run the CAD flow exactly
once), tenant namespace isolation, the daemon's request telemetry and
graceful drain, the load generator's cold/warm comparison (Section
VI-A's cache argument as serving-time quantiles), the tracer's bounded
span buffer, and the serve-cell handling of the regression sentinel.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro import obs
from repro.obs.export import chrome_trace, read_jsonl, validate_trace
from repro.obs.regress import (
    DEFAULT_TOLERANCES,
    compare_manifests,
    flatten_cells,
    resolve_tolerance,
)
from repro.obs.tracer import Tracer
from repro.serve.protocol import (
    ProtocolError,
    ServeClient,
    recv_message,
    send_message,
)
from repro.serve.server import ServerConfig, SpecializationServer
from repro.serve.store import SharedBitstreamStore, validate_tenant
from repro.serve.worker import execute_specialize, parse_specialize_request


@pytest.fixture
def metrics():
    """A fresh, enabled global metrics registry; disabled on teardown."""
    try:
        yield obs.enable_metrics()
    finally:
        obs.disable_metrics()


def _request(tenant="acme", app="adpcm", **overrides) -> dict:
    message = {
        "op": "specialize",
        "tenant": tenant,
        "app": app,
        "pruning": {"time_share_pct": 50.0, "max_blocks": 3},
    }
    message.update(overrides)
    return parse_specialize_request(message)


@pytest.fixture
def server(tmp_path):
    """A started thread-backend daemon; drained on teardown."""
    srv = SpecializationServer(
        ServerConfig(
            workers=2, queue_depth=8, store_root=str(tmp_path / "store")
        ),
        record_run=False,
    )
    srv.start()
    try:
        yield srv
    finally:
        srv.request_shutdown(reason="test-teardown")
        srv.drain()


class TestProtocol:
    def test_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            message = {"op": "ping", "payload": {"nested": [1, 2, 3]}}
            send_message(a, message)
            assert recv_message(b) == message
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_message(b) is None
        finally:
            b.close()

    def test_garbage_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\x04nope")
            with pytest.raises(ProtocolError):
                recv_message(b)
        finally:
            a.close()
            b.close()


class TestStore:
    def test_tenant_name_validation(self):
        assert validate_tenant("tenant00") == "tenant00"
        for bad in ("", "../evil", "a/b", "a b", None, "x" * 65):
            with pytest.raises(ValueError):
                validate_tenant(bad)

    def test_tenant_namespaces_are_isolated(self, tmp_path):
        store = SharedBitstreamStore(tmp_path / "store")
        a = store.tenant("acme")
        b = store.tenant("umbrella")
        execute_specialize(_request(tenant="acme"), a)
        key = a.cache.index_keys()[0] if hasattr(a.cache, "index_keys") else None
        # Tenant directories are disjoint; umbrella sees none of acme's
        # entries even for the identical candidate signature.
        assert a.cache.stats()["entries"] > 0
        assert b.cache.stats()["entries"] == 0
        assert a.cache.root != b.cache.root
        if key is not None:
            assert not b.contains(key)

    def test_single_flight_runs_cad_once(self, tmp_path, metrics):
        """N concurrent equal-signature requests -> exactly one CAD run."""
        store = SharedBitstreamStore(tmp_path / "store")
        n = 6
        barrier = threading.Barrier(n)
        results: list[dict] = []
        errors: list[BaseException] = []

        def worker() -> None:
            cache = store.tenant("acme")
            barrier.wait()
            try:
                result = execute_specialize(_request(tenant="acme"), cache)
                results.append(result)
            except BaseException as exc:  # pragma: no cover - debug aid
                errors.append(exc)
            finally:
                store.release_thread_flights()

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == n
        # adpcm selects exactly one candidate: one builder implements it,
        # every other request observes a cache hit.
        counters = metrics.snapshot()["counters"]
        assert counters.get("cad.implementations", 0) == 1
        combined = store.combined_stats()
        assert combined["stores"] == 1
        assert combined["misses"] == 1
        assert combined["hits"] == n - 1
        # Every request reports the same (deterministic) speedup.
        assert len({r["speedup"] for r in results}) == 1

    def test_serial_rerun_hits_without_dedup(self, tmp_path):
        store = SharedBitstreamStore(tmp_path / "store")
        cache = store.tenant("acme")
        cold = execute_specialize(_request(), cache)
        warm = execute_specialize(_request(), cache)
        assert cold["cache_hits"] == 0
        assert warm["cache_hits"] == warm["candidates"]
        # No concurrency -> plain persistent-cache hits, no flights saved.
        assert store.dedup_saved == 0
        # Warm effective overhead drops: break-even improves (VI-A).
        assert warm["break_even_seconds"] < cold["break_even_seconds"]


class TestServer:
    def test_ping_stats_and_specialize(self, server):
        client = ServeClient(port=server.port)
        assert client.ping()["status"] == "ok"
        response = client.specialize("acme", "adpcm")
        assert response["status"] == "ok"
        result = response["result"]
        assert result["candidates"] >= 1
        assert result["break_even_seconds"] > 0
        assert response["timing"]["service_ms"] > 0

        stats = client.stats()["stats"]
        assert stats["requests"]["completed"] == 1
        latency = stats["latency"]
        for hist in ("queue_wait", "service", "break_even"):
            assert latency[hist]["count"] == 1
            assert latency[hist]["p99"] is not None
        assert stats["tenants"]["acme"]["requests"] == 1

    def test_unknown_app_fails_without_crashing(self, server):
        client = ServeClient(port=server.port)
        response = client.specialize("acme", "no-such-app")
        assert response["status"] == "error"
        assert client.ping()["status"] == "ok"
        assert client.stats()["stats"]["requests"]["failed"] == 1

    def test_invalid_tenant_rejected(self, server):
        client = ServeClient(port=server.port)
        response = client.specialize("../evil", "adpcm")
        assert response["status"] == "error"
        assert "tenant" in response["error"]

    def test_signal_shutdown_reports_interrupted(self, tmp_path):
        srv = SpecializationServer(
            ServerConfig(workers=1, store_root=str(tmp_path / "store")),
            record_run=False,
        )
        srv.start()
        client = ServeClient(port=srv.port)
        assert client.specialize("acme", "adpcm")["status"] == "ok"
        srv.request_shutdown(reason="signal")
        status = srv.serve_forever(poll_seconds=0.01)
        assert status == "interrupted"
        assert srv.summary(shutdown=status)["shutdown"] == "interrupted"
        # Queued + in-flight work was finished, not dropped.
        assert srv.requests["completed"] == 1

    def test_client_shutdown_op_drains_ok(self, tmp_path):
        srv = SpecializationServer(
            ServerConfig(workers=1, store_root=str(tmp_path / "store")),
            record_run=False,
        )
        srv.start()
        client = ServeClient(port=srv.port)
        assert client.shutdown()["status"] == "ok"
        assert srv.serve_forever(poll_seconds=0.01) == "ok"

    def test_backpressure_rejects_with_retry_after(self, tmp_path):
        srv = SpecializationServer(
            ServerConfig(
                workers=1, queue_depth=1, store_root=str(tmp_path / "store")
            ),
            record_run=False,
        )
        # Overfill the admission queue directly (no workers running yet):
        # the first ticket is admitted, the second must be rejected with a
        # retry-after hint.
        srv._stats_lock  # noqa: B018 - touch to document internal access
        a1, a2 = socket.socketpair()
        b1, b2 = socket.socketpair()
        try:
            msg = {
                "op": "specialize",
                "tenant": "acme",
                "app": "adpcm",
            }
            assert srv._admit(a1, dict(msg)) is True
            assert srv._admit(b1, dict(msg)) is False
            reply = recv_message(b2)
            assert reply["status"] == "rejected"
            assert reply["reason"] == "queue-full"
            assert reply["retry_after_ms"] >= 25.0
            assert srv.requests["rejected"] == 1
        finally:
            for s in (a1, a2, b1, b2):
                s.close()


class TestLoadgen:
    def test_small_cold_warm_run(self, tmp_path):
        from repro.serve.loadgen import (
            LoadGenConfig,
            build_schedule,
            render_loadgen,
            run_loadgen,
        )

        cfg = LoadGenConfig(
            requests=10,
            rate=200.0,
            concurrency=4,
            workers=2,
            queue_depth=4,
            tenants=2,
            mix=(("adpcm", 1.0),),
        )
        # The schedule is deterministic for a seed.
        s1, s2 = build_schedule(cfg), build_schedule(cfg)
        assert [vars(r) for r in s1] == [vars(r) for r in s2]

        out = tmp_path / "BENCH_serve.json"
        report = run_loadgen(cfg, out=out, store_root=tmp_path / "store")
        assert report["schema"].startswith("repro-bench-serve/")
        phases = report["phases"]
        assert phases["cold"]["requests"]["completed"] == 10
        assert phases["warm"]["requests"]["completed"] == 10
        # Every admitted-then-rejected request was retried to completion.
        assert phases["cold"]["unresolved"] == 0
        # The warm phase re-runs the same schedule over the now-populated
        # store: zero CAD implementations and a strictly lower p95.
        assert phases["warm"]["cad_implementations"] == 0
        assert report["warm_p95_lower"] is True
        comparison = report["comparison"]
        assert (
            comparison["break_even_p95_warm"]
            < comparison["break_even_p95_cold"]
        )
        assert json.loads(out.read_text())["warm_p95_lower"] is True
        rendering = render_loadgen(report)
        assert "warm-vs-cold break-even p95" in rendering


class TestBoundedTracer:
    def test_ring_mode_drops_oldest(self):
        tracer = Tracer(enabled=True, max_spans=100)
        for i in range(10_000):
            tracer.event("tick", i=i)
        spans = tracer.spans()
        assert len(spans) <= 100
        assert tracer.spans_dropped == 10_000 - len(spans)
        # The newest spans survive.
        assert spans[-1].attrs["i"] == 9_999

    def test_flush_mode_streams_jsonl(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer = Tracer(enabled=True)
        tracer.configure_flush(sink, max_spans=64)
        with tracer.span("serve.run"):
            for i in range(10_000):
                tracer.event("serve.request", i=i)
        total = tracer.flush_all()
        tracer.close_flush()
        assert total == 10_001
        assert tracer.spans_dropped == 0
        # The flushed file is a valid trace: replay + Chrome export work.
        records = read_jsonl(sink)
        assert len(records) == 10_001
        assert validate_trace(records) == []
        trace = chrome_trace(records)
        assert len(trace["traceEvents"]) == len(records)
        names = {r.name for r in records}
        assert names == {"serve.run", "serve.request"}

    def test_reconfigure_resets_sink(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer = Tracer(enabled=True)
        tracer.configure_flush(sink, max_spans=4)
        for i in range(32):
            tracer.event("tick", i=i)
        tracer.configure_flush(None, max_spans=None)
        assert tracer.flush_path is None
        for i in range(32):
            tracer.event("tick", i=i)
        assert len(tracer.spans()) >= 32


class TestTracePropagation:
    def test_traceparent_round_trip(self):
        from repro.serve.protocol import (
            mint_trace_id,
            mint_traceparent,
            parse_traceparent,
        )

        tid = mint_trace_id("r0001")
        assert tid == mint_trace_id("r0001")
        assert tid != mint_trace_id("r0002")
        assert len(tid) == 32
        parsed = parse_traceparent(mint_traceparent(tid, 0x1234))
        assert parsed == {"trace_id": tid, "parent_span_id": 0x1234}
        # Malformed headers are best-effort: never an error, just no trace.
        assert parse_traceparent(None) is None
        assert parse_traceparent("garbage") is None
        assert parse_traceparent("00-nothex!-0001-01") is None
        # A zero parent span id (client had tracing disabled) maps to None.
        assert parse_traceparent(mint_traceparent(tid, 0))["parent_span_id"] is None

    def test_thread_backend_stitches_one_trace(self, tmp_path):
        from repro.serve.protocol import mint_trace_id

        tracer = obs.enable_tracing()
        try:
            srv = SpecializationServer(
                ServerConfig(workers=1, store_root=str(tmp_path / "store")),
                record_run=False,
            )
            srv.start()
            try:
                response = ServeClient(port=srv.port).specialize(
                    "acme", "adpcm", request_id="r0001"
                )
                assert response["status"] == "ok"
            finally:
                srv.request_shutdown(reason="test")
                srv.drain()
        finally:
            obs.disable_tracing()
        trace_id = mint_trace_id("r0001")
        assert response["trace"]["trace_id"] == trace_id
        (client_span,) = tracer.find("serve.client")
        (request_span,) = tracer.find("serve.request")
        (queue_span,) = tracer.find("serve.queue.wait")
        executes = [
            s
            for s in tracer.find("serve.execute")
            if s.attrs.get("backend") == "thread"
        ]
        # Client, server request, queue wait, and CAD execution all carry
        # the trace id the client minted from the request id.
        for span in (client_span, request_span, queue_span, *executes):
            assert span.attrs["trace_id"] == trace_id
        # Each side learned the other's span id: the traceparent header
        # carried the client's, the response trace block the server's.
        assert request_span.attrs["client_span_id"] == client_span.span_id
        assert (
            client_span.attrs["server_span_id"] == f"{request_span.span_id:016x}"
        )
        # Queue wait and execution are children of the request span, so the
        # stitched tree breaks client wait into queue wait vs CAD.
        assert queue_span.parent_id == request_span.span_id
        assert executes
        assert all(s.parent_id == request_span.span_id for s in executes)

    def test_process_backend_stitches_across_processes(self, tmp_path):
        import os

        from repro.serve.protocol import mint_trace_id

        tracer = obs.enable_tracing()
        try:
            srv = SpecializationServer(
                ServerConfig(
                    workers=1,
                    backend="process",
                    store_root=str(tmp_path / "store"),
                ),
                record_run=False,
            )
            srv.start()
            try:
                response = ServeClient(port=srv.port).specialize(
                    "acme", "adpcm", request_id="r0002"
                )
                assert response["status"] == "ok"
            finally:
                srv.request_shutdown(reason="test")
                srv.drain()
        finally:
            obs.disable_tracing()
        (request_span,) = tracer.find("serve.request")
        workers = [
            s
            for s in tracer.find("serve.execute")
            if s.attrs.get("backend") == "process"
        ]
        assert len(workers) == 1
        (worker_span,) = workers
        # The pool child's subtree was absorbed under this request's span:
        # parent/child span ids hold across the process boundary.
        assert worker_span.parent_id == request_span.span_id
        assert worker_span.attrs["trace_id"] == mint_trace_id("r0002")
        assert worker_span.attrs["pid"] != os.getpid()
        # Absorbed spans are rebased onto the parent's clock, so the worker
        # subtree nests inside the request interval.
        assert request_span.start <= worker_span.start
        assert worker_span.end <= request_span.end

    def test_dedup_wait_span_links_to_leader(self, tmp_path):
        import time

        tracer = obs.enable_tracing()
        try:
            store = SharedBitstreamStore(tmp_path / "store")
            key = "f" * 64
            leader_ids: dict = {}
            errors: list = []
            leader_building = threading.Event()
            release = threading.Event()

            def leader():
                try:
                    with tracer.span("serve.request", role="leader") as span:
                        leader_ids["span_id"] = span.span_id
                        # Empty cache, no flight: this thread becomes the
                        # builder and holds the flight open until released.
                        assert store.tenant("acme").get(key) is None
                        leader_building.set()
                        assert release.wait(10.0)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                finally:
                    leader_building.set()
                    store.release_thread_flights()

            def follower():
                try:
                    assert leader_building.wait(10.0)
                    with tracer.span("serve.request", role="follower"):
                        # Waits on the leader's flight; the leader releases
                        # without storing, so the retry becomes the builder.
                        assert store.tenant("acme").get(key) is None
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                finally:
                    store.release_thread_flights()

            threads = [
                threading.Thread(target=leader),
                threading.Thread(target=follower),
            ]
            for t in threads:
                t.start()
            # Release the leader only once the follower is subscribed to
            # its flight, so the dedup-wait span is guaranteed to exist.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with store._lock:
                    flight = store._flights.get(("acme", key))
                    if flight is not None and flight.waiters >= 1:
                        break
                time.sleep(0.002)
            release.set()
            for t in threads:
                t.join(timeout=10.0)
            assert not errors
        finally:
            obs.disable_tracing()
        (wait_span,) = tracer.find("store.dedup.wait")
        roles = {
            s.attrs.get("role"): s for s in tracer.find("serve.request")
        }
        # The follower's wait span sits in its own request subtree but
        # links to the leader span whose CAD run it subscribed to.
        assert wait_span.parent_id == roles["follower"].span_id
        assert wait_span.attrs["leader_span_id"] == leader_ids["span_id"]
        assert wait_span.attrs["leader_span_id"] == roles["leader"].span_id
        assert wait_span.attrs["timed_out"] is False
        assert wait_span.thread != roles["leader"].thread


class _RejectingClient(ServeClient):
    """A client whose server is permanently saturated (always rejects)."""

    def __init__(self):
        super().__init__()
        self.calls: list[dict] = []

    def specialize(self, tenant, app, **kwargs):
        self.calls.append(dict(kwargs))
        return {"status": "rejected", "retry_after_ms": 50}


class TestSpecializeRetryBackoff:
    def _run(self, monkeypatch, request_id, attempts=6, cap_ms=400.0):
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.serve.protocol.time.sleep", lambda s: sleeps.append(s)
        )
        client = _RejectingClient()
        response, retries = client.specialize_retry(
            "acme",
            "adpcm",
            max_attempts=attempts,
            backoff_cap_ms=cap_ms,
            request_id=request_id,
        )
        return response, retries, sleeps, client

    def test_backoff_grows_caps_and_jitters(self, monkeypatch):
        response, retries, sleeps, client = self._run(monkeypatch, "r0042")
        assert response["status"] == "rejected"
        assert retries == 6
        assert len(sleeps) == 6
        assert all(s >= 0.005 for s in sleeps)
        # Worst-case jitter is 1.5x the capped delay.
        assert max(sleeps) <= 400.0 * 1.5 / 1000.0
        # Exponential growth dominates the jitter band: attempt 2's
        # minimum (200ms * 0.5) exceeds attempt 0's maximum (50ms * 1.5).
        assert sleeps[2] > sleeps[0]
        # Every attempt (including rejected ones) shares one trace id.
        from repro.serve.protocol import mint_trace_id

        assert {c.get("trace_id") for c in client.calls} == {
            mint_trace_id("r0042")
        }

    def test_backoff_is_deterministic_per_request_identity(self, monkeypatch):
        _, _, first, _ = self._run(monkeypatch, "r0042")
        _, _, replay, _ = self._run(monkeypatch, "r0042")
        _, _, other, _ = self._run(monkeypatch, "r0099")
        # A replayed schedule backs off identically; a different request
        # decorrelates (no retry stampede in lockstep).
        assert first == replay
        assert first != other


class TestAbsorbAfterFlush:
    def _worker_records(self, count=20):
        from repro.obs.export import tracer_records

        worker = Tracer(enabled=True)
        for i in range(count):
            with worker.span("cad.stage", index=i):
                pass
        return tracer_records(worker)

    def test_absorb_into_flush_sink_accounts_exactly(self, tmp_path):
        records = self._worker_records(20)
        sink = tmp_path / "trace.jsonl"
        tracer = Tracer(enabled=True)
        tracer.configure_flush(sink, max_spans=8)
        assert tracer.absorb(records, parent=None) == 20
        # absorb() appends the whole batch, then enforces the limit once:
        # 20 spans against max_spans=8 evicts down to 8 // 2 = 4 kept,
        # flushing exactly 16 to the sink and dropping none.
        assert tracer.spans_flushed == 16
        assert tracer.spans_dropped == 0
        assert len(tracer.spans()) == 4
        assert tracer.flush_all() == 20
        assert tracer.spans() == []
        tracer.close_flush()
        # The sink holds the complete absorbed trace, flushed + drained,
        # and it round-trips through validation and Chrome export whole.
        flushed = read_jsonl(sink)
        assert len(flushed) == 20
        assert sorted(r.attrs["index"] for r in flushed) == list(range(20))
        assert validate_trace(flushed) == []
        trace = chrome_trace(flushed)
        assert len(trace["traceEvents"]) == 20

    def test_absorb_ring_mode_drops_oldest(self):
        records = self._worker_records(20)
        tracer = Tracer(enabled=True)
        tracer.configure_flush(None, max_spans=8)
        assert tracer.absorb(records, parent=None) == 20
        # Same eviction math, but with no sink the overflow is dropped.
        assert tracer.spans_dropped == 16
        assert tracer.spans_flushed == 0
        assert tracer.flush_all() == 0
        kept = [s.attrs["index"] for s in tracer.spans()]
        assert kept == [16, 17, 18, 19]


class TestServeRegressCells:
    def _manifest(self, **serve) -> dict:
        return {
            "schema": "repro-run/1",
            "run_id": "r0001-serve",
            "command": "serve",
            "config": {"command": "serve"},
            "status": 0,
            "wall_seconds": 10.0,
            "serve": serve,
        }

    def test_latency_cells_informational_counts_gated(self):
        manifest = self._manifest(
            requests={"total": 5, "completed": 4, "failed": 1, "rejected": 2},
            latency={"break_even": {"p95": 5344.0, "count": 4}},
            dedup={"saved": 3},
            config={"port": 12345},
        )
        cells = flatten_cells(manifest)
        assert cells["serve.requests.completed"] == 4.0
        assert "serve.config.port" not in cells
        assert resolve_tolerance(
            "serve.requests.completed", list(DEFAULT_TOLERANCES)
        ) == pytest.approx(1e-9)
        for informational in (
            "serve.requests.total",
            "serve.requests.rejected",
            "serve.latency.break_even.p95",
            "serve.dedup.saved",
            "serve.phases.cold.retries",
            "serve.comparison.break_even_p95_cold",
        ):
            assert (
                resolve_tolerance(informational, list(DEFAULT_TOLERANCES))
                is None
            )

    def test_latency_drift_never_regresses_counts_do(self):
        baseline = self._manifest(
            requests={"completed": 10, "failed": 0},
            latency={"break_even": {"p95": 5000.0}},
            warm_p95_lower=True,
        )
        ok = self._manifest(
            requests={"completed": 10, "failed": 0},
            latency={"break_even": {"p95": 9999.0}},
            warm_p95_lower=True,
        )
        report = compare_manifests(baseline, ok)
        assert report.ok
        dropped = self._manifest(
            requests={"completed": 9, "failed": 1},
            latency={"break_even": {"p95": 5000.0}},
            warm_p95_lower=True,
        )
        report = compare_manifests(baseline, dropped)
        assert not report.ok
        names = {d.cell for d in report.regressions}
        assert "serve.requests.completed" in names
        # warm_p95_lower flattens to a tightly gated boolean cell.
        flipped = self._manifest(
            requests={"completed": 10, "failed": 0},
            latency={"break_even": {"p95": 5000.0}},
            warm_p95_lower=False,
        )
        report = compare_manifests(baseline, flipped)
        assert not report.ok
        assert any(
            d.cell == "serve.warm_p95_lower" for d in report.regressions
        )


class TestRunsListLimit:
    def _record_runs(self, tmp_path, count: int) -> None:
        from repro.obs.ledger import RunLedger, RunRecorder

        ledger = RunLedger(tmp_path / "ledger")
        for _ in range(count):
            recorder = RunRecorder(
                ledger=ledger,
                run_id=ledger.reserve_run("serve"),
                command="serve",
            )
            recorder.finalize(status=0)

    def test_limit_truncates_and_notes(self, tmp_path, capsys):
        from repro.cli import main

        self._record_runs(tmp_path, 5)
        ledger = str(tmp_path / "ledger")
        assert main(["runs", "list", "--ledger", ledger, "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("r000") == 2
        assert "3 older run(s) not shown" in out
        assert main(["runs", "list", "--ledger", ledger, "--limit", "0"]) == 0
        out = capsys.readouterr().out
        assert out.count("r000") == 5
        assert "not shown" not in out
