"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_choices(self):
        args = build_parser().parse_args(["tables", "3"])
        assert args.which == "3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "9"])

    def test_app_commands_require_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["jit"])
        # analyze's app became optional (--domain analyzes a whole suite),
        # so bare `analyze` is a runtime error instead of a parse error.
        assert main(["analyze"]) == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "--domain", "bogus"])

    def test_profile_requires_target_and_valid_clock(self):
        args = build_parser().parse_args(["profile", "sor", "--clock", "virtual"])
        assert args.target == "sor" and args.clock == "virtual"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "sor", "--clock", "wall"])

    def test_fidelity_rejects_unknown_domain(self):
        args = build_parser().parse_args(["fidelity"])
        assert args.domain == "embedded" and not args.full
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fidelity", "--domain", "bogus"])


class TestCommands:
    def test_apps_lists_suite(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "164.gzip" in out and "whetstone" in out
        assert "datasets:" in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Candidate Search" in out and "Virtual Machine" in out

    def test_analyze_app(self, capsys):
        assert main(["analyze", "sor"]) == 0
        out = capsys.readouterr().out
        assert "ASIP ratio" in out
        assert "break-even" in out

    def test_timeline_app(self, capsys):
        assert main(["timeline", "sor"]) == 0
        out = capsys.readouterr().out
        assert "bitstream" in out
        assert "dedicated-host break-even" in out

    def test_jit_app(self, capsys):
        assert main(["jit", "sor"]) == 0
        out = capsys.readouterr().out
        assert "patched output identical: True" in out

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            main(["analyze", "999.bogus"])


@pytest.mark.trace_smoke
class TestTraceCommands:
    def test_jit_trace_metrics_round_trip(self, tmp_path, capsys):
        """One embedded app, traced end to end, then replayed."""
        from repro import obs

        trace_file = tmp_path / "out.jsonl"
        assert main(["jit", "sor", "--trace", str(trace_file), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert f"wrote" in out and "metrics snapshot:" in out
        assert "vm.instructions" in out
        assert not obs.tracing_enabled() and not obs.metrics_enabled()

        records = obs.read_jsonl(trace_file)
        assert obs.validate_trace(records) == []
        names = {r.name for r in records}
        assert "search" in names and "icap.reconfigure" in names
        assert set(obs.TABLE3_SPAN_NAMES) <= names

        assert main(["trace", str(trace_file), "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "Per-stage times" in out
        for label in ("C2V", "Syn", "Xst", "Tra", "Map", "PAR", "Bitgen"):
            assert label in out
        assert "pipeline.run" in out  # timeline section

    def test_trace_rejects_invalid_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"name": "", "span_id": 1, "t0": 0, "t1": 1}\n')
        assert main(["trace", str(bad)]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_trace_chrome_export(self, tmp_path, capsys):
        import json

        from repro import obs

        trace_file = tmp_path / "out.jsonl"
        tracer = obs.Tracer()
        with tracer.span("cad.map") as sp:
            sp.set_attr("virtual_seconds", 40.0)
        obs.export_tracer(tracer, trace_file)

        chrome_file = tmp_path / "chrome.json"
        assert main(["trace", str(trace_file), "--chrome", str(chrome_file)]) == 0
        doc = json.loads(chrome_file.read_text())
        assert doc["traceEvents"][0]["name"] == "Map"

    def test_profile_app_collapsed_stdout(self, capsys):
        """The end-to-end pipeline profiled on the virtual clock carries
        one collapsed frame per Table III CAD stage."""
        from repro import obs

        assert main(["profile", "sor", "--clock", "virtual",
                     "--collapsed", "-", "--tree"]) == 0
        out = capsys.readouterr().out
        assert "Hot paths (virtual time)" in out
        assert "profile (virtual time)" in out  # --tree section
        assert not obs.tracing_enabled()  # switched back off after the run
        collapsed = [l for l in out.splitlines() if ";" in l and l[-1].isdigit()]
        for stage in obs.TABLE3_SPAN_NAMES:
            assert any(stage in line for line in collapsed), stage


class TestTraceEdgeCases:
    def test_trace_replays_empty_span_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", str(empty)]) == 0
        out = capsys.readouterr().out
        assert "Per-stage times" in out

    def test_chrome_export_of_zero_duration_span(self, tmp_path):
        import json

        trace_file = tmp_path / "zero.jsonl"
        trace_file.write_text(
            json.dumps(
                {
                    "name": "cad.map",
                    "span_id": 1,
                    "parent_id": None,
                    "t0": 2.5,
                    "t1": 2.5,
                    "thread": 0,
                    "attrs": {"virtual_seconds": 40.0},
                }
            )
            + "\n"
        )
        chrome_file = tmp_path / "chrome.json"
        assert main(["trace", str(trace_file), "--chrome", str(chrome_file)]) == 0
        (event,) = json.loads(chrome_file.read_text())["traceEvents"]
        assert event["name"] == "Map"
        assert event["dur"] == 0.0
        assert event["ts"] == pytest.approx(2.5e6)


class TestProfileCommand:
    @pytest.fixture()
    def saved_trace(self, tmp_path):
        from repro import obs

        tracer = obs.Tracer()
        with tracer.span("pipeline"):
            with tracer.span("cad.map") as sp:
                sp.set_attr("virtual_seconds", 40.0)
        trace_file = tmp_path / "trace.jsonl"
        obs.export_tracer(tracer, trace_file)
        return trace_file

    def test_profile_from_saved_trace(self, saved_trace, capsys):
        assert main(["profile", str(saved_trace), "--clock", "virtual",
                     "--collapsed", "-"]) == 0
        out = capsys.readouterr().out
        assert "Hot paths (virtual time)" in out
        assert "pipeline;cad.map 40000000" in out

    def test_profile_collapsed_to_file(self, saved_trace, tmp_path, capsys):
        collapsed = tmp_path / "stacks.txt"
        assert main(["profile", str(saved_trace), "--clock", "virtual",
                     "--collapsed", str(collapsed)]) == 0
        assert "wrote 1 collapsed stacks" in capsys.readouterr().out
        assert collapsed.read_text() == "pipeline;cad.map 40000000\n"

    def test_profile_rejects_invalid_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["profile", str(bad)]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_profile_of_empty_trace(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["profile", str(empty)]) == 0
        assert "nothing to profile" in capsys.readouterr().out


class TestHeatCommand:
    def test_heat_annotates_kernel_blocks(self, capsys):
        assert main(["heat", "sor"]) == 0
        out = capsys.readouterr().out
        assert "Hottest blocks" in out
        assert "[kernel]" in out
        assert "define" in out  # annotated IR listing

    def test_heat_unknown_function(self, capsys):
        assert main(["heat", "sor", "--function", "nope"]) == 1
        assert "no function" in capsys.readouterr().err


class TestFidelityCommand:
    def test_fidelity_writes_report(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "BENCH_fidelity_embedded.json"
        assert main(["fidelity", "--domain", "embedded",
                     "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Fidelity vs. paper" in out
        assert f"wrote fidelity report: {out_file}" in out
        doc = json.loads(out_file.read_text())
        assert doc["ok"] is True and doc["failed"] == 0
