"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_choices(self):
        args = build_parser().parse_args(["tables", "3"])
        assert args.which == "3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "9"])

    def test_app_commands_require_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze"])


class TestCommands:
    def test_apps_lists_suite(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "164.gzip" in out and "whetstone" in out
        assert "datasets:" in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Candidate Search" in out and "Virtual Machine" in out

    def test_analyze_app(self, capsys):
        assert main(["analyze", "sor"]) == 0
        out = capsys.readouterr().out
        assert "ASIP ratio" in out
        assert "break-even" in out

    def test_timeline_app(self, capsys):
        assert main(["timeline", "sor"]) == 0
        out = capsys.readouterr().out
        assert "bitstream" in out
        assert "dedicated-host break-even" in out

    def test_jit_app(self, capsys):
        assert main(["jit", "sor"]) == 0
        out = capsys.readouterr().out
        assert "patched output identical: True" in out

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            main(["analyze", "999.bogus"])


@pytest.mark.trace_smoke
class TestTraceCommands:
    def test_jit_trace_metrics_round_trip(self, tmp_path, capsys):
        """One embedded app, traced end to end, then replayed."""
        from repro import obs

        trace_file = tmp_path / "out.jsonl"
        assert main(["jit", "sor", "--trace", str(trace_file), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert f"wrote" in out and "metrics snapshot:" in out
        assert "vm.instructions" in out
        assert not obs.tracing_enabled() and not obs.metrics_enabled()

        records = obs.read_jsonl(trace_file)
        assert obs.validate_trace(records) == []
        names = {r.name for r in records}
        assert "search" in names and "icap.reconfigure" in names
        assert set(obs.TABLE3_SPAN_NAMES) <= names

        assert main(["trace", str(trace_file), "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "Per-stage times" in out
        for label in ("C2V", "Syn", "Xst", "Tra", "Map", "PAR", "Bitgen"):
            assert label in out
        assert "pipeline.run" in out  # timeline section

    def test_trace_rejects_invalid_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"name": "", "span_id": 1, "t0": 0, "t1": 1}\n')
        assert main(["trace", str(bad)]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_trace_chrome_export(self, tmp_path, capsys):
        import json

        from repro import obs

        trace_file = tmp_path / "out.jsonl"
        tracer = obs.Tracer()
        with tracer.span("cad.map") as sp:
            sp.set_attr("virtual_seconds", 40.0)
        obs.export_tracer(tracer, trace_file)

        chrome_file = tmp_path / "chrome.json"
        assert main(["trace", str(trace_file), "--chrome", str(chrome_file)]) == 0
        doc = json.loads(chrome_file.read_text())
        assert doc["traceEvents"][0]["name"] == "Map"
