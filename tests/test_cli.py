"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_choices(self):
        args = build_parser().parse_args(["tables", "3"])
        assert args.which == "3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "9"])

    def test_app_commands_require_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze"])


class TestCommands:
    def test_apps_lists_suite(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "164.gzip" in out and "whetstone" in out
        assert "datasets:" in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Candidate Search" in out and "Virtual Machine" in out

    def test_analyze_app(self, capsys):
        assert main(["analyze", "sor"]) == 0
        out = capsys.readouterr().out
        assert "ASIP ratio" in out
        assert "break-even" in out

    def test_timeline_app(self, capsys):
        assert main(["timeline", "sor"]) == 0
        out = capsys.readouterr().out
        assert "bitstream" in out
        assert "dedicated-host break-even" in out

    def test_jit_app(self, capsys):
        assert main(["jit", "sor"]) == 0
        out = capsys.readouterr().out
        assert "patched output identical: True" in out

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            main(["analyze", "999.bogus"])
