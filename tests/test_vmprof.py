"""Tests for the VM execution observatory (vmprof, dispatch cost, bench)."""

import json

import pytest

from repro.cli import main
from repro.ir.opcodes import Opcode
from repro.obs.ledger import RunLedger
from repro.obs.vmprof import (
    FUSION_EXCLUDED,
    build_profile,
    mine_superinsns,
    profile_app,
    render_vmprof,
    top_digrams,
    vm_manifest_block,
    vmprof_json,
)
from repro.vm import Interpreter
from repro.vm.costmodel import PPC405_COST_MODEL
from repro.vm.dispatchcost import (
    CLASS_OF_OPCODE,
    MEASURED_CLASSES,
    DispatchCostTable,
    measure_dispatch_costs,
)
from repro.vm.profiler import BlockTimeSampler, static_block_opcodes

from conftest import build_sumsq_module


class TestOpcodeAccounting:
    """Post-hoc opcode/digram counts derived from the block profile."""

    @pytest.fixture
    def sumsq_run(self):
        module = build_sumsq_module()
        result = Interpreter(module).run("sumsq", [10])
        return module, result

    def test_opcode_counts_hand_checked(self, sumsq_run):
        module, result = sumsq_run
        counts = result.profile.opcode_counts(module)
        # entry runs once: 2 allocas; body runs 10 times: the one mul.
        assert counts["alloca"] == 2
        assert counts["mul"] == 10
        # loop header runs 11 times (10 iterations + exit check).
        assert counts["icmp"] == 11
        assert counts["condbr"] == 11

    def test_opcode_counts_sum_to_steps(self, sumsq_run):
        module, result = sumsq_run
        counts = result.profile.opcode_counts(module)
        assert sum(counts.values()) == result.steps

    def test_digram_counts_hand_checked(self, sumsq_run):
        module, result = sumsq_run
        digrams = result.profile.digram_counts(module)
        # loop header: load, icmp, condbr -- 11 executions.
        assert digrams[("load", "icmp")] == 11
        assert digrams[("icmp", "condbr")] == 11
        # body: load, mul, load, add, store, add, store, br -- 10 executions.
        assert digrams[("load", "mul")] == 10
        assert digrams[("store", "add")] == 10

    def test_digrams_never_cross_block_boundaries(self, sumsq_run):
        module, result = sumsq_run
        digrams = result.profile.digram_counts(module)
        # Terminators end every block, so no digram can start with one.
        assert not any(first in ("br", "condbr", "ret") for first, _ in digrams)

    def test_opcode_cycles_total_matches_profile(self, sumsq_run):
        module, result = sumsq_run
        cycles = result.profile.opcode_cycles(module, PPC405_COST_MODEL)
        total = result.profile.total_cycles(module, PPC405_COST_MODEL)
        assert sum(cycles.values()) == pytest.approx(total)

    def test_static_block_opcodes_shape(self, sumsq_run):
        module, _ = sumsq_run
        composition = static_block_opcodes(module)
        assert composition[("sumsq", "entry")][:2] == ("alloca", "alloca")
        assert composition[("sumsq", "loop")] == ("load", "icmp", "condbr")
        assert all(ops for ops in composition.values())


class TestSampler:
    def test_sampler_attributes_time_to_blocks(self):
        module = build_sumsq_module()
        sampler = BlockTimeSampler(interval=1)
        result = Interpreter(module, sampler=sampler).run("sumsq", [200])
        assert result.return_value == sum(i * i for i in range(200))
        assert sampler.sample_count > 0
        assert sampler.sampled_seconds > 0
        # The hot loop blocks must absorb nearly all samples.
        shares = sampler.shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert ("sumsq", "body") in shares

    def test_sampled_run_is_observationally_identical(self):
        module = build_sumsq_module()
        plain = Interpreter(module).run("sumsq", [64])
        sampled = Interpreter(
            module, sampler=BlockTimeSampler(interval=4)
        ).run("sumsq", [64])
        assert sampled.return_value == plain.return_value
        assert sampled.steps == plain.steps
        assert {k: p.count for k, p in sampled.profile.blocks.items()} == {
            k: p.count for k, p in plain.profile.blocks.items()
        }

    def test_disabled_sampler_leaves_interpreter_untouched(self):
        module = build_sumsq_module()
        interp = Interpreter(module)
        assert interp.sampler is None
        interp.run("sumsq", [8])


class TestDispatchCost:
    def test_every_opcode_has_a_class(self):
        missing = [op.value for op in Opcode if op.value not in CLASS_OF_OPCODE]
        assert not missing

    def test_calibration_produces_full_table(self):
        table = measure_dispatch_costs(iters=300, width=4, repeats=1)
        for name in MEASURED_CLASSES + ("control",):
            assert name in table.class_seconds
            assert table.class_seconds[name] >= 0.0
        assert table.baseline_seconds > 0
        # int add is the dispatch floor the miner prices savings with.
        assert table.dispatch_overhead_seconds == table.class_seconds["int_alu"]

    def test_seconds_for_accepts_enum_and_mnemonic(self):
        table = DispatchCostTable(class_seconds={"int_alu": 1e-7, "load": 1e-6})
        assert table.seconds_for("add") == 1e-7
        assert table.seconds_for(Opcode.LOAD) == 1e-6
        with pytest.raises(KeyError, match="bogus"):
            table.seconds_for("bogus")

    def test_round_trip_through_dict(self):
        table = DispatchCostTable(
            class_seconds={"int_alu": 3e-7, "control": 1e-7},
            baseline_seconds=9e-7,
            iters=100,
            width=4,
            repeats=2,
        )
        back = DispatchCostTable.from_dict(table.to_dict())
        assert back.class_seconds["int_alu"] == pytest.approx(3e-7)
        assert back.baseline_seconds == pytest.approx(9e-7)
        assert (back.iters, back.width, back.repeats) == (100, 4, 2)


class TestSuperInsnMiner:
    def test_mines_hot_straight_line_sequences(self):
        module = build_sumsq_module()
        profile = Interpreter(module).run("sumsq", [50]).profile
        candidates = mine_superinsns(module, profile, 1e-7)
        assert candidates
        names = [c.name for c in candidates]
        # The body's load+mul run is the hottest fusible digram start.
        assert any(name.startswith("load+mul") for name in names)
        # No candidate may contain an excluded opcode.
        for c in candidates:
            assert not set(c.sequence) & FUSION_EXCLUDED
            assert 2 <= len(c.sequence) <= 4
        # Savings are monotone with the deterministic ranking.
        savings = [c.est_saved_seconds for c in candidates]
        assert savings == sorted(savings, reverse=True)

    def test_savings_scale_with_dispatch_overhead(self):
        module = build_sumsq_module()
        profile = Interpreter(module).run("sumsq", [20]).profile
        cheap = mine_superinsns(module, profile, 1e-8)
        costly = mine_superinsns(module, profile, 1e-6)
        # Overhead is a common factor: same ranking, scaled savings.
        assert [c.name for c in cheap] == [c.name for c in costly]
        assert costly[0].est_saved_seconds == pytest.approx(
            100 * cheap[0].est_saved_seconds
        )

    def test_dominated_subsequences_are_dropped(self):
        module = build_sumsq_module()
        profile = Interpreter(module).run("sumsq", [50]).profile
        candidates = mine_superinsns(module, profile, 1e-7)
        # A selected sub-sequence must occur more often than every longer
        # selected candidate containing it (else it adds no new sites).
        for i, c in enumerate(candidates):
            for longer in candidates[:i]:
                if len(longer.sequence) > len(c.sequence):
                    joined = "+".join(longer.sequence)
                    if c.name in joined:
                        assert c.dynamic_count > longer.dynamic_count

    def _patch_body_with_custom(self, module):
        """Splice a CUSTOM into the sumsq body, patcher-style."""
        from repro.ir.instructions import Instruction
        from repro.ir.types import I32

        body = next(
            b
            for b in module.function("sumsq").blocks
            if b.name == "body"
        )
        custom = Instruction(
            Opcode.CUSTOM, I32, [body.instructions[0]], "c", custom_id=1
        )
        body.insert(1, custom)
        return body

    def test_stale_profile_skips_patched_blocks(self):
        # Regression: a profile recorded *before* the patcher rewrites a
        # block must not be mined against the rewritten composition — the
        # counts would attach to windows (adjacencies across the patch
        # seam) that never executed together.
        module = build_sumsq_module()
        profile = Interpreter(module).run("sumsq", [50]).profile
        before = mine_superinsns(module, profile, 1e-7)
        assert any("load+mul" in c.name for c in before)

        self._patch_body_with_custom(module)
        stale = mine_superinsns(module, profile, 1e-7)
        # The modified body contributes nothing; the untouched loop block
        # still mines normally.
        assert all("load+mul" not in c.name for c in stale)
        assert ("load", "icmp") in {c.sequence for c in stale}
        composition = static_block_opcodes(module)
        untouched = {
            key for key, ops in composition.items() if "custom" not in ops
        }
        for c in stale:
            assert any(
                "+".join(c.sequence) in "+".join(composition[key])
                for key in untouched
            )

    def test_fresh_profile_never_mines_across_custom(self):
        # Re-profiled after patching, the CUSTOM acts as a hard barrier:
        # no candidate contains it or spans the seam it sits on.
        module = build_sumsq_module()
        self._patch_body_with_custom(module)
        interp = Interpreter(module)
        interp.custom_evaluators[1] = lambda vals: vals[0]
        profile = interp.run("sumsq", [50]).profile
        fresh = mine_superinsns(module, profile, 1e-7)
        assert fresh  # the patched block's remaining runs still mine
        # The seam (load|CUSTOM|mul) never yields a load+mul window.
        assert all("load+mul" not in c.name for c in fresh)
        for c in fresh:
            assert "custom" not in c.sequence


class TestVmProfileReports:
    @pytest.fixture(scope="class")
    def fft_profile(self):
        # One shared profiled run; calibration skipped to keep tests fast.
        return profile_app("fft", sample_interval=64, calibrate=False)

    def test_profile_app_assembles_all_views(self, fft_profile):
        prof = fft_profile
        assert prof.app == "fft" and prof.steps > 0
        assert sum(prof.opcode_counts.values()) == prof.steps
        assert prof.wall_seconds > 0 and prof.instructions_per_second > 0
        assert prof.sample_count > 0
        assert prof.candidates
        assert prof.dispatch is None  # calibrate=False

    def test_divergence_rows_cover_shares(self, fft_profile):
        rows = fft_profile.divergence_rows()
        assert rows
        assert sum(r.virtual_share for r in rows) == pytest.approx(1.0)
        assert sum(r.real_share for r in rows) == pytest.approx(1.0)
        # Sorted by absolute divergence, worst first.
        deltas = [abs(r.delta) for r in rows]
        assert deltas == sorted(deltas, reverse=True)

    def test_json_report_schema(self, fft_profile):
        report = vmprof_json(fft_profile)
        assert report["schema"] == "repro-vmprof/1"
        for key in ("opcodes", "digrams", "divergence", "superinsn"):
            assert report[key]
        assert report["dispatch"] is None

    def test_manifest_block_cells(self, fft_profile):
        block = vm_manifest_block(fft_profile, top_digrams_n=5)
        assert block["steps"] == fft_profile.steps
        assert len(block["digrams"]) == 5
        assert block["superinsn"]
        first = next(iter(block["superinsn"].values()))
        assert first["rank"] == 1
        assert block["sampled"]["interval"] == 64
        assert "dispatch" not in block  # no calibration

    def test_render_is_plain_ascii(self, fft_profile):
        text = render_vmprof(fft_profile, top=5)
        assert "Top opcodes" in text and "Superinstruction candidates" in text
        assert text.isascii()

    def test_top_digrams_deterministic(self, fft_profile):
        a = top_digrams(fft_profile, 10)
        b = top_digrams(fft_profile, 10)
        assert a == b
        counts = [count for _, count in a]
        assert counts == sorted(counts, reverse=True)


class TestCliCommands:
    def test_vmprof_writes_json_report(self, tmp_path, capsys):
        out = tmp_path / "vmprof.json"
        assert main(["vmprof", "fft", "--no-calibrate", "--json", str(out)]) == 0
        text = capsys.readouterr().out
        assert "vmprof: fft" in text
        report = json.loads(out.read_text())
        assert report["schema"] == "repro-vmprof/1"
        assert report["app"] == "fft"

    def test_vmprof_ledger_attaches_vm_block(self, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        code = main(
            ["vmprof", "fft", "--no-calibrate", "--ledger", str(ledger_dir)]
        )
        assert code == 0
        capsys.readouterr()
        ledger = RunLedger(ledger_dir)
        manifest = ledger.load(ledger.resolve("latest"))
        assert manifest["vm"]["app"] == "fft"
        assert manifest["vm"]["opcodes"]
        assert manifest["vm"]["superinsn"]

    def test_heat_top_opcodes_rollup(self, capsys):
        assert main(["heat", "fft", "--top-opcodes", "5"]) == 0
        out = capsys.readouterr().out
        assert "Opcode rollup (top 5)" in out
        assert "cycles %" in out

    def test_heat_without_rollup_unchanged(self, capsys):
        assert main(["heat", "fft"]) == 0
        assert "Opcode rollup" not in capsys.readouterr().out


class TestVmBench:
    def test_run_vm_bench_single_app_smoke(self, tmp_path):
        from repro.obs.bench import BENCH_VM_SCHEMA, run_vm_bench

        out = tmp_path / "BENCH_vm.json"
        report = run_vm_bench(
            apps=["fft"],
            out=out,
            calibration_iters=300,
            pairs=1,
        )
        assert report["schema"] == BENCH_VM_SCHEMA
        assert json.loads(out.read_text()) == report
        app = report["apps"]["fft"]
        assert app["virtual_identical"] is True
        assert app["wall_seconds"] > 0
        assert app["opcodes"] and app["top_digrams"] and app["superinsn"]
        assert report["totals"]["virtual_identical"] is True
        assert report["dispatch_cost"]["classes_ns"]

    def test_run_vm_bench_fused_phase(self, tmp_path):
        from repro.obs.bench import run_vm_bench

        report = run_vm_bench(
            apps=["sor"],
            out=tmp_path / "BENCH_vm.json",
            calibration_iters=300,
            pairs=1,
            fuse=8,
        )
        fused = report["apps"]["sor"]["fused"]
        assert fused["virtual_identical"] is True
        assert fused["sites"] > 0
        assert fused["dispatches_removed"] > 0
        assert fused["sequences"]
        totals = report["totals"]
        assert totals["fused_virtual_identical"] is True
        assert totals["fused_speedup"] > 0
