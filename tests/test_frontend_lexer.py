"""Tests for the MiniC lexer."""

import pytest

from repro.frontend.errors import CompileError
from repro.frontend.lexer import TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def texts(source):
    return [t.text for t in tokenize(source)][:-1]


class TestBasics:
    def test_empty_source_is_just_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind is TokenKind.EOF

    def test_identifiers_vs_keywords(self):
        toks = tokenize("int foo while whilefoo _bar x1")
        assert [t.kind for t in toks[:-1]] == [
            TokenKind.KEYWORD,
            TokenKind.IDENT,
            TokenKind.KEYWORD,
            TokenKind.IDENT,
            TokenKind.IDENT,
            TokenKind.IDENT,
        ]

    def test_integer_literals(self):
        toks = tokenize("0 42 0x1F")
        assert [t.value for t in toks[:-1]] == [0, 42, 31]

    def test_float_literals(self):
        toks = tokenize("1.5 2. 1e3 2.5e-2 3.0f")
        values = [t.value for t in toks[:-1]]
        assert values == [1.5, 2.0, 1000.0, 0.025, 3.0]
        assert all(t.kind is TokenKind.FLOAT_LIT for t in toks[:-1])

    def test_longest_match_punctuation(self):
        assert texts("a <<= b << c <= d < e") == ["a", "<<=", "b", "<<", "c", "<=", "d", "<", "e"]
        assert texts("x++ + ++y") == ["x", "++", "+", "++", "y"]

    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment until eol\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* b c d */ e") == ["a", "e"]

    def test_multiline_block_comment_tracks_lines(self):
        toks = tokenize("/* x\ny\nz */ a")
        assert toks[0].line == 3

    def test_unterminated_block_comment(self):
        with pytest.raises(CompileError, match="unterminated"):
            tokenize("a /* no end")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(CompileError, match="unexpected character"):
            tokenize("a $ b")

    def test_malformed_exponent(self):
        with pytest.raises(CompileError, match="exponent"):
            tokenize("1e+")
