"""Tests for the fleet workload-mix simulator (repro mix)."""

import math

import pytest

from repro.mix import (
    MIX_PRESETS,
    MixTraceConfig,
    build_profile,
    build_trace,
    empirical_entropy,
    mix_entropy,
    preset_config,
    simulate_cell,
)

#: A warm FP kernel alpha and beta share verbatim: structurally equal
#: candidate subgraphs get the same signature, so the fleet store can
#: serve one app's CAD run to the other (satellite cross-app sharing).
#: Each app's *unique* kernel runs hotter, so the shared configuration
#: ranks second — small slot pools then contend on the unique tops while
#: the shared entry migrates through the store under eviction pressure.
_SHARED_KERNEL = """
    for (int it = 0; it < 10; it++)
        for (int i = 1; i < 63; i++) {
            c[i] = a[i] * b[i] + a[i - 1] * 0.5;
            s += c[i] * (a[i] - b[i]) * 0.125;
        }
"""

_PRELUDE = """
double a[64]; double b[64]; double c[64];
int main() {
    for (int i = 0; i < 64; i++) { a[i] = 0.01 * (double)i; b[i] = 2.0; }
    double s = 0.0;
"""

_EPILOGUE = """
    print_f64(s);
    return 0;
}
"""


def _alpha_src(hot: int) -> str:
    return (
        _PRELUDE
        + """
    for (int it = 0; it < %d; it++)
        for (int i = 1; i < 63; i++)
            s += (a[i] * a[i] - b[i] * 0.75 + c[i] * 0.5) * (a[i] - b[i]) + a[i] * 0.125;
"""
        % hot
        + _SHARED_KERNEL
        + _EPILOGUE
    )


def _beta_src(hot: int) -> str:
    return (
        _PRELUDE
        + """
    for (int it = 0; it < %d; it++)
        for (int i = 1; i < 63; i++)
            s += ((a[i] + b[i]) * (a[i] - c[i]) + b[i] * 0.375) * b[i] - c[i] * 0.25;
"""
        % hot
        + _SHARED_KERNEL
        + _EPILOGUE
    )


def _gamma_src(hot: int) -> str:
    # gamma shares nothing: its events flush the shared configuration
    # out of small pools, forcing alpha/beta back to the fleet store.
    return (
        _PRELUDE
        + """
    for (int it = 0; it < %d; it++)
        for (int i = 1; i < 63; i++) {
            c[i] = (a[i] * 0.5 + b[i] * 0.25) * (b[i] - a[i] * 0.125);
            s += c[i] * a[i] * 0.0625 - b[i] * 0.5;
        }
"""
        % hot
        + _EPILOGUE
    )


@pytest.fixture(scope="module")
def fleet_profiles():
    """Three synthetic apps; alpha and beta share one warm kernel.

    Each app is profiled on two "datasets" (different hot-loop trip
    counts, like the registry's train/ref pairs) so coverage classifies
    the hot blocks LIVE and the Table IV break-even stays finite.
    """
    from repro.frontend import compile_source
    from repro.profiling import classify_blocks
    from repro.vm import Interpreter

    profiles = {}
    sources = (("alpha", _alpha_src), ("beta", _beta_src), ("gamma", _gamma_src))
    for name, src_of in sources:
        module = compile_source(src_of(80), name).module
        train = Interpreter(module).run("main").profile
        ref_module = compile_source(src_of(96), name + "_ref").module
        ref = Interpreter(ref_module).run("main").profile
        coverage = classify_blocks(module, [train, ref])
        profiles[name] = build_profile(name, module, train, coverage)
    return profiles


@pytest.fixture(scope="module")
def fleet_trace():
    config = MixTraceConfig(
        name="synthetic",
        mix=(("alpha", 1.0), ("beta", 1.0), ("gamma", 1.0)),
        events=30,
        seed=1,
    )
    return build_trace(config)


class TestTrace:
    def test_bit_identical_rebuild(self):
        config = preset_config("uniform", events=200, seed=3)
        assert build_trace(config) == build_trace(config)

    def test_seed_changes_trace(self):
        a = build_trace(preset_config("uniform", events=200, seed=0))
        b = build_trace(preset_config("uniform", events=200, seed=1))
        assert a != b

    def test_sequence_numbers(self):
        trace = build_trace(preset_config("skewed", events=10))
        assert [e.seq for e in trace] == list(range(10))

    def test_skew_dominates(self):
        trace = build_trace(preset_config("skewed", events=400))
        counts: dict[str, int] = {}
        for event in trace:
            counts[event.app] = counts.get(event.app, 0) + 1
        # fft has weight 8 of 12: it must dominate the draw.
        assert counts["fft"] > max(
            v for k, v in counts.items() if k != "fft"
        )

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown mix preset"):
            preset_config("nope")

    def test_config_validation(self):
        with pytest.raises(ValueError, match="events"):
            MixTraceConfig(name="x", mix=(("a", 1.0),), events=0)
        with pytest.raises(ValueError, match="at least one"):
            MixTraceConfig(name="x", mix=())
        with pytest.raises(ValueError, match="non-positive weight"):
            MixTraceConfig(name="x", mix=(("a", 0.0),))


class TestEntropy:
    def test_uniform_is_one(self):
        assert mix_entropy(MIX_PRESETS["uniform"]) == pytest.approx(1.0)

    def test_single_app_is_zero(self):
        assert mix_entropy((("fft", 1.0),)) == 0.0

    def test_skewed_between(self):
        h = mix_entropy(MIX_PRESETS["skewed"])
        assert 0.0 < h < 1.0

    def test_empirical_matches_counts(self):
        trace = build_trace(
            MixTraceConfig(name="t", mix=(("a", 1.0), ("b", 1.0)), events=64)
        )
        h = empirical_entropy(trace)
        counts: dict[str, int] = {}
        for event in trace:
            counts[event.app] = counts.get(event.app, 0) + 1
        p = counts["a"] / 64
        expected = -(p * math.log2(p) + (1 - p) * math.log2(1 - p))
        assert h == pytest.approx(expected)


class TestProfiles:
    def test_candidates_sorted_by_value(self, fleet_profiles):
        for profile in fleet_profiles.values():
            values = [c.value for c in profile.candidates]
            assert values == sorted(values, reverse=True)
            assert len(profile.candidates) >= 2

    def test_shared_signature_across_apps(self, fleet_profiles):
        alpha = {c.signature for c in fleet_profiles["alpha"].candidates}
        beta = {c.signature for c in fleet_profiles["beta"].candidates}
        assert alpha & beta, "identical kernels must fold to one signature"

    def test_wanted_caps_at_capacity(self, fleet_profiles):
        profile = fleet_profiles["alpha"]
        assert len(profile.wanted(1)) == 1
        assert profile.wanted(1)[0] is profile.candidates[0]
        assert profile.wanted(10_000) == profile.candidates

    def test_reload_cost_is_milliseconds(self, fleet_profiles):
        for profile in fleet_profiles.values():
            for cand in profile.candidates:
                assert 0.0 < cand.reload_seconds < 1.0


class TestSimulator:
    def test_cell_bit_identical(self, fleet_profiles, fleet_trace, tmp_path):
        a = simulate_cell(
            fleet_profiles, fleet_trace, "lru", 2, tmp_path / "a"
        ).as_dict()
        b = simulate_cell(
            fleet_profiles, fleet_trace, "lru", 2, tmp_path / "b"
        ).as_dict()
        assert a == b

    def test_uncontended_accounting(self, fleet_profiles, fleet_trace, tmp_path):
        capacity = sum(len(p.candidates) for p in fleet_profiles.values())
        cell = simulate_cell(
            fleet_profiles, fleet_trace, "lru", capacity, tmp_path / "u"
        )
        assert cell.slots["evictions"] == 0
        assert cell.slots["reloads"] == 0
        unique_sigs = {
            c.signature
            for p in fleet_profiles.values()
            for c in p.candidates
        }
        # Every signature is CAD'd exactly once fleet-wide; all later
        # wants are slot hits (the pool never evicts).
        total_misses = sum(s.store_misses for s in cell.apps.values())
        assert total_misses == cell.slots["loads"] <= len(unique_sigs)
        for name, stats in cell.apps.items():
            wants = stats.slot_hits + stats.slot_loads
            assert wants == stats.events * len(
                fleet_profiles[name].wanted(capacity)
            )

    def test_contended_cell_reloads(self, fleet_profiles, fleet_trace, tmp_path):
        cell = simulate_cell(
            fleet_profiles, fleet_trace, "lru", 1, tmp_path / "c"
        )
        assert cell.slots["evictions"] > 0
        assert cell.slots["reloads"] > 0
        assert set(cell.slots["evictions_by_reason"]) == {"lru"}
        # Reloads pay ICAP again but never re-run the CAD flow: the
        # store serves every repeat lookup.
        total_misses = sum(s.store_misses for s in cell.apps.values())
        total_hits = sum(s.store_hits for s in cell.apps.values())
        assert total_hits > total_misses

    def test_cross_app_store_sharing(self, fleet_profiles, fleet_trace, tmp_path):
        # Pick the smallest capacity at which the shared signature is in
        # both sharers' want set: gamma's events then flush it from the
        # pool, and the next sharer's reload hits the store entry the
        # *other* app produced — the satellite's cross_app_hits proof.
        alpha_sigs = [c.signature for c in fleet_profiles["alpha"].candidates]
        beta_sigs = [c.signature for c in fleet_profiles["beta"].candidates]
        shared = set(alpha_sigs) & set(beta_sigs)
        if not shared:
            pytest.skip("no structurally shared kernel between sharers")
        capacity = min(
            max(alpha_sigs.index(s), beta_sigs.index(s)) + 1 for s in shared
        )
        cell = simulate_cell(
            fleet_profiles, fleet_trace, "lru", capacity, tmp_path / "x"
        )
        assert cell.store["cross_app_hits"] > 0

    def test_break_even_finite_and_positive(
        self, fleet_profiles, fleet_trace, tmp_path
    ):
        cell = simulate_cell(
            fleet_profiles, fleet_trace, "lru", 2, tmp_path / "be"
        )
        assert cell.fleet_break_even_seconds is not None
        assert cell.fleet_break_even_seconds > 0
        for stats in cell.apps.values():
            assert 0.0 <= stats.store_hit_rate <= 1.0
            assert 0.0 <= stats.slot_hit_rate <= 1.0

    def test_store_scrubbed_of_host_detail(
        self, fleet_profiles, fleet_trace, tmp_path
    ):
        cell = simulate_cell(
            fleet_profiles, fleet_trace, "lru", 2, tmp_path / "s"
        )
        assert "root" not in cell.store
        assert "bytes" not in cell.store


class TestManifestBlock:
    def _report(self):
        cell = {
            "fleet_break_even_seconds": 100.0,
            "mean_occupancy_pct": 50.0,
            "slots": {"loads": 3, "reloads": 1, "evictions": 2},
            "store": {"hits": 4, "misses": 2, "cross_app_hits": 1},
        }
        return {
            "events": 10,
            "seed": 0,
            "entropy": {"uniform": {"configured": 1.0, "empirical": 0.9}},
            "gate": {
                "breakeven_beats_lru": True,
                "contended": {"preset": "uniform", "capacity": 4},
            },
            "wall_seconds": 1.5,
            "cells": {"uniform": {"lru": {"c04": cell}}},
        }

    def test_nested_dicts_flatten(self):
        from repro.obs.bench import mix_manifest_block
        from repro.obs.regress import flatten_cells

        block = mix_manifest_block(self._report())
        cells = flatten_cells({"mix": block})
        assert cells["mix.cells.uniform.lru.c04.fleet_break_even_seconds"] == 100.0
        assert cells["mix.cells.uniform.lru.c04.cross_app_hits"] == 1.0
        assert cells["mix.events"] == 10.0
        assert cells["mix.gate.breakeven_beats_lru"] == 1.0

    def test_break_even_cells_gated_exactly(self):
        from repro.obs.regress import DEFAULT_TOLERANCES, resolve_tolerance

        tolerances = list(DEFAULT_TOLERANCES)
        assert (
            resolve_tolerance(
                "mix.cells.uniform.lru.c04.fleet_break_even_seconds",
                tolerances,
            )
            == 1e-9
        )
        assert resolve_tolerance("mix.wall_seconds", tolerances) is None
        assert (
            resolve_tolerance(
                "whatif.mix.cells.uniform.lru.c04.fleet_break_even_seconds",
                tolerances,
            )
            == 1e-9
        )


class TestCli:
    def test_invalid_slots_spec(self, capsys):
        from repro.cli import main

        assert main(["mix", "--slots", "abc"]) == 2
        assert "invalid --slots" in capsys.readouterr().err

    def test_empty_axes_rejected(self, capsys):
        from repro.cli import main

        assert main(["mix", "--policies", ","]) == 2
        assert "at least one" in capsys.readouterr().err

    def test_nonpositive_capacity_rejected(self, capsys):
        from repro.cli import main

        assert main(["mix", "--slots", "0,4"]) == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_whatif_mix_needs_mix_run(self, tmp_path, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "whatif",
                    "--ledger",
                    str(tmp_path),
                    "--slots",
                    "4",
                ]
            )
            == 2
        )
