"""Failure-injection tests: CAD and VM failure paths must degrade cleanly."""

import pytest

from repro.core import AsipSpecializationProcess
from repro.fpga import CadToolFlow
from repro.fpga.device import FpgaDevice, PartialRegion
from repro.fpga.placer import PlacementError
from repro.frontend import compile_source
from repro.vm import Interpreter, VMError


# A device whose reconfigurable region is far too small for any FP datapath.
TINY_DEVICE = FpgaDevice(
    name="xc4v_tiny",
    clb_cols=8,
    clb_rows=8,
    luts_per_clb=8,
    dsp_blocks=4,
    bram_blocks=4,
    ppc_cores=1,
    config_frame_bytes=164,
    frames_per_clb_col=64,
    region=PartialRegion(
        name="ci_region", origin_col=2, origin_row=2, cols=2, rows=2
    ),
)


@pytest.fixture(scope="module")
def fp_app():
    src = """
double a[48]; double b[48];
int main() {
    for (int i = 0; i < 48; i++) { a[i] = 0.02 * (double)i; b[i] = 1.25; }
    double s = 0.0;
    for (int it = 0; it < 8; it++)
        for (int i = 1; i < 47; i++)
            s += a[i] * b[i] + a[i - 1] * 0.5 - b[i] / 7.0;
    print_f64(s);
    return 0;
}
"""
    comp = compile_source(src, "failinj")
    profile = Interpreter(comp.module).run("main").profile
    return comp.module, profile


class TestCadFailures:
    def test_placement_failure_on_tiny_region(self, fp_app):
        module, profile = fp_app
        from repro.ise import CandidateSearch

        search = CandidateSearch().run(module, profile)
        flow = CadToolFlow(device=TINY_DEVICE)
        with pytest.raises(PlacementError):
            flow.implement(search.selected[0].candidate)

    def test_asip_sp_survives_cad_failures(self, fp_app):
        module, profile = fp_app
        process = AsipSpecializationProcess(
            toolflow=CadToolFlow(device=TINY_DEVICE)
        )
        report = process.run(module, profile)
        # every candidate failed placement; the report says so cleanly
        assert report.candidate_count == 0
        assert report.failed
        for est, message in report.failed:
            assert "region" in message or "cells" in message
        assert report.toolflow_seconds == 0.0

    def test_partial_failure_keeps_successes(self, fp_app):
        # On the real device everything fits: failed list must be empty.
        module, profile = fp_app
        report = AsipSpecializationProcess().run(module, profile)
        assert not report.failed
        assert report.candidate_count >= 1


class TestVmFailures:
    def test_oom_heap(self):
        src = """
int main() {
    long total = 0;
    for (int i = 0; i < 100; i++) {
        double* p = (double*)malloc((long)4000000);
        total += 1;
    }
    return (int)total;
}
"""
        module = compile_source(src, "oom").module

        # Memory faults surface as VMError: the interpreter translates
        # MemoryError_ at the frame boundary so callers see one fault type.
        with pytest.raises(VMError, match="heap"):
            Interpreter(module).run("main")

    def test_out_of_bounds_store(self):
        src = """
int xs[4];
int main() {
    int i = dataset_size();
    xs[i] = 7;    // i = 10**9-ish: far out of range
    return xs[0];
}
"""
        module = compile_source(src, "oob").module

        with pytest.raises(VMError, match="out of range"):
            Interpreter(module, dataset_size=10**9).run("main")

    def test_null_deref(self):
        src = """
int main() {
    int* p = (int*)((long)0);
    return p[0];
}
"""
        module = compile_source(src, "null").module

        with pytest.raises(VMError, match="out of range"):
            Interpreter(module).run("main")

    def test_stack_overflow_from_runaway_recursion(self):
        src = """
int down(int n) {
    int pad[64];
    pad[0] = n;
    return down(n + 1) + pad[0];
}
int main() { return down(0); }
"""
        module = compile_source(src, "deeprec").module

        with pytest.raises((RecursionError, VMError)):
            Interpreter(module).run("main")
