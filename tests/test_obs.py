"""Tests for the observability layer (repro.obs): tracer, metrics, export."""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro import obs
from repro.obs.tracer import NOOP_SPAN, Tracer
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.vm import Interpreter


@pytest.fixture
def tracer():
    """A fresh, enabled global tracer; disabled again on teardown."""
    try:
        yield obs.enable_tracing()
    finally:
        obs.disable_tracing()


@pytest.fixture
def metrics():
    """A fresh, enabled global metrics registry; disabled on teardown."""
    try:
        yield obs.enable_metrics()
    finally:
        obs.disable_metrics()


class TestTracer:
    def test_nesting_and_attributes(self, tracer):
        with tracer.span("outer", app="fft") as outer:
            with tracer.span("inner") as inner:
                inner.set_attr("luts", 42)
            outer.set_attrs(selected=3)
        spans = tracer.spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        by_name = {s.name: s for s in spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None
        assert by_name["outer"].attrs == {"app": "fft", "selected": 3}
        assert by_name["inner"].attrs == {"luts": 42}
        assert by_name["inner"].duration >= 0.0
        assert by_name["outer"].end >= by_name["outer"].start

    def test_siblings_share_parent(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b = tracer.find("a")[0], tracer.find("b")[0]
        assert a.parent_id == b.parent_id == root.span_id

    def test_exception_records_error_and_unwinds(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("failing"):
                    raise ValueError("boom")
        failing = tracer.find("failing")[0]
        assert failing.attrs["error"] == "ValueError"
        # Parenting still works after the unwind.
        with tracer.span("after"):
            pass
        assert tracer.find("after")[0].parent_id is None

    def test_event_is_instantaneous(self, tracer):
        span = tracer.event("icap.reconfigure", bytes=128)
        assert span.end is not None
        assert tracer.find("icap.reconfigure") == [span]

    def test_disabled_tracer_returns_noop_singleton(self):
        obs.disable_tracing()
        t = obs.get_tracer()
        span = t.span("anything", x=1)
        assert span is NOOP_SPAN
        with span as s:
            s.set_attr("k", "v")
        assert s.attrs == {}
        assert s.duration == 0.0

    def test_reset_clears_spans(self, tracer):
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.spans() == []

    def test_threads_get_independent_stacks(self):
        t = Tracer()
        done = threading.Event()

        def worker():
            with t.span("worker-root"):
                with t.span("worker-child"):
                    done.wait(5)

        th = threading.Thread(target=worker)
        with t.span("main-root"):
            th.start()
            time.sleep(0.01)
            with t.span("main-child"):
                pass
            done.set()
            th.join()
        by_name = {s.name: s for s in t.spans()}
        assert by_name["main-child"].parent_id == by_name["main-root"].span_id
        assert (
            by_name["worker-child"].parent_id == by_name["worker-root"].span_id
        )
        assert by_name["worker-root"].parent_id is None


class TestNoOpOverhead:
    def test_disabled_span_overhead_is_negligible(self):
        """Guard: a disabled tracer's span() must stay sub-microsecond-ish."""
        obs.disable_tracing()
        t = obs.get_tracer()
        n = 50_000
        start = time.perf_counter()
        for _ in range(n):
            with t.span("hot"):
                pass
        per_call = (time.perf_counter() - start) / n
        assert per_call < 5e-6, f"no-op span cost {per_call * 1e6:.2f} µs"

    def test_disabled_metrics_leave_interpreter_untouched(self, fp_kernel):
        obs.disable_metrics()
        obs.get_metrics().reset()
        interp = Interpreter(fp_kernel.module, dataset_size=16, dataset_seed=3)
        result = interp.run("main")
        assert result.steps > 0
        assert interp._intrinsic_counts == {}
        snap = obs.get_metrics().snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}


class TestMetrics:
    def test_counter_gauge_histogram_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("runs").inc()
        reg.counter("runs").inc(2)
        reg.gauge("occupancy").set(0.75)
        hist = reg.histogram("seconds", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            hist.observe(v)
        snap = reg.snapshot()
        assert snap["counters"]["runs"] == 3
        assert snap["gauges"]["occupancy"] == 0.75
        h = snap["histograms"]["seconds"]
        assert h["count"] == 3
        assert h["sum"] == pytest.approx(55.5)
        assert h["min"] == 0.5 and h["max"] == 50.0
        assert h["buckets"] == {"le_1": 1, "le_10": 1, "inf": 1}

    def test_counter_rejects_negative_increment(self):
        reg = MetricsRegistry()
        counter = reg.counter("runs")
        counter.inc(2)
        with pytest.raises(ValueError, match="monotonic"):
            counter.inc(-1)
        # The failed inc must not have corrupted the count.
        assert counter.value == 2

    def test_registry_is_thread_safe_under_contention(self):
        reg = MetricsRegistry()
        threads, per_thread = 8, 2500
        barrier = threading.Barrier(threads)

        def hammer(i: int) -> None:
            barrier.wait()
            for _ in range(per_thread):
                # All threads hit the same named instruments, so lost
                # updates would show up as short totals.
                reg.counter("shared").inc()
                reg.gauge("last_writer").set(i)
                reg.histogram("values", buckets=(1.0,)).observe(0.5)

        workers = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        snap = reg.snapshot()
        expected = threads * per_thread
        assert snap["counters"]["shared"] == expected
        assert snap["histograms"]["values"]["count"] == expected
        assert snap["histograms"]["values"]["sum"] == pytest.approx(
            0.5 * expected
        )
        assert snap["gauges"]["last_writer"] in range(threads)

    def test_histogram_bucket_edges(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(1.0)  # on the bound -> first bucket (le semantics)
        hist.observe(1.0001)
        assert hist.bucket_counts == [1, 1]

    def test_registry_reset_and_render(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        text = obs.render_snapshot(reg.snapshot())
        assert "a" in text
        reg.reset()
        assert obs.render_snapshot(reg.snapshot()) == "(no metrics recorded)"

    def test_percentile_interpolates_within_buckets(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 2.0, 4.0, 6.0, 8.0, 50.0):
            hist.observe(v)
        # q=0 / q=1 are exact (clamped to the observed range).
        assert hist.percentile(0.0) == pytest.approx(0.5)
        assert hist.percentile(1.0) == pytest.approx(50.0)
        # The median rank falls in the (1, 10] bucket, interpolated.
        p50 = hist.percentile(0.50)
        assert 1.0 < p50 <= 10.0
        # p99 lands in the last occupied bucket, clamped to max.
        assert 10.0 < hist.percentile(0.99) <= 50.0

    def test_percentile_empty_and_bounds(self):
        hist = Histogram("h", buckets=(1.0,))
        assert hist.percentile(0.5) is None
        with pytest.raises(ValueError):
            hist.percentile(1.5)
        with pytest.raises(ValueError):
            hist.percentile(-0.1)

    def test_percentile_single_observation(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        hist.observe(3.0)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert hist.percentile(q) == pytest.approx(3.0)

    def test_snapshot_and_render_include_percentiles(self):
        reg = MetricsRegistry()
        hist = reg.histogram("seconds", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 5.0):
            hist.observe(v)
        h = reg.snapshot()["histograms"]["seconds"]
        assert h["p50"] == pytest.approx(hist.percentile(0.50))
        assert h["p95"] == pytest.approx(hist.percentile(0.95))
        assert h["p99"] == pytest.approx(hist.percentile(0.99))
        text = obs.render_snapshot(reg.snapshot())
        assert "p50=" in text and "p95=" in text and "p99=" in text
        # Empty histograms render dashes, not crashes.
        reg2 = MetricsRegistry()
        reg2.histogram("empty")
        assert "p50=-" in obs.render_snapshot(reg2.snapshot())

    def test_interpreter_counts_instructions_and_intrinsics(
        self, fp_kernel, metrics
    ):
        interp = Interpreter(fp_kernel.module, dataset_size=16, dataset_seed=3)
        result = interp.run("main")
        snap = metrics.snapshot()
        assert snap["counters"]["vm.instructions"] == result.steps
        assert snap["counters"]["vm.runs"] == 1
        assert snap["counters"]["vm.intrinsic.rand"] > 0
        assert snap["counters"]["vm.intrinsic.print_f64"] == 1


class TestExport:
    def _sample_tracer(self) -> Tracer:
        t = Tracer()
        with t.span("pipeline.run", app="sor"):
            with t.span("cad.map", luts=12) as sp:
                sp.set_attr("virtual_seconds", 40.0)
        return t

    def test_jsonl_round_trip(self, tmp_path):
        t = self._sample_tracer()
        path = tmp_path / "trace.jsonl"
        assert obs.write_jsonl(t.spans(), path, epoch=t.epoch) == 2
        records = obs.read_jsonl(path)
        assert obs.validate_trace(records) == []
        by_name = {r.name: r for r in records}
        assert set(by_name) == {"pipeline.run", "cad.map"}
        cad = by_name["cad.map"]
        assert cad.parent_id == by_name["pipeline.run"].span_id
        assert cad.attrs["luts"] == 12
        assert cad.virtual_seconds == 40.0
        assert cad.t1 >= cad.t0 >= 0.0

    def test_jsonl_file_object_round_trip(self):
        t = self._sample_tracer()
        buf = io.StringIO()
        obs.write_jsonl(t.spans(), buf, epoch=t.epoch)
        records = obs.read_jsonl(io.StringIO(buf.getvalue()))
        assert len(records) == 2

    def test_validate_catches_bad_records(self):
        good = obs.SpanRecord("x", 1, None, 0.0, 1.0)
        assert obs.validate_trace([good]) == []
        bad = [
            obs.SpanRecord("", 1, None, 0.0, 1.0),
            obs.SpanRecord("y", 1, None, 0.0, 1.0),  # duplicate id
            obs.SpanRecord("z", 2, 99, 2.0, 1.0),  # bad parent, t1 < t0
        ]
        errors = obs.validate_trace(bad)
        assert len(errors) == 4

    def test_read_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="line 1"):
            obs.read_jsonl(path)

    def test_chrome_trace_shape(self):
        t = self._sample_tracer()
        buf = io.StringIO()
        obs.write_jsonl(t.spans(), buf, epoch=t.epoch)
        records = obs.read_jsonl(io.StringIO(buf.getvalue()))
        doc = obs.chrome_trace(records)
        assert {e["ph"] for e in doc["traceEvents"]} == {"X"}
        names = {e["name"] for e in doc["traceEvents"]}
        assert "Map" in names  # paper label substituted for cad.map
        assert all(e["dur"] >= 0 for e in doc["traceEvents"])

    def test_chrome_trace_counter_events(self):
        t = self._sample_tracer()
        buf = io.StringIO()
        obs.write_jsonl(t.spans(), buf, epoch=t.epoch)
        records = obs.read_jsonl(io.StringIO(buf.getvalue()))
        snapshot = {
            "counters": {"cache.hits": 3, "cache.misses": 7},
            "gauges": {"slots.used": 2.0},
            "histograms": {"ignored": {"count": 1}},
        }
        doc = obs.chrome_trace(records, snapshot=snapshot)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert {e["cat"] for e in counters} == {"metrics"}
        extent = max(r.t1 for r in records) * 1e6
        by_name: dict[str, list] = {}
        for e in counters:
            by_name.setdefault(e["name"], []).append(e)
        # Counters are monotonic-from-zero: a zero sample at the start
        # and the final value at the trace extent.
        hits = sorted(by_name["cache.hits"], key=lambda e: e["ts"])
        assert [(e["ts"], e["args"]["value"]) for e in hits] == [
            (0.0, 0),
            (extent, 3),
        ]
        # Gauges only get their final sample.
        assert [(e["ts"], e["args"]["value"]) for e in by_name["slots.used"]] == [
            (extent, 2.0)
        ]
        assert "ignored" not in by_name

    def test_chrome_trace_counter_events_skip_non_numeric(self):
        records = [obs.SpanRecord("x", 1, None, 0.0, 1.0)]
        doc = obs.chrome_trace(
            records, snapshot={"counters": {"bad": "oops"}, "gauges": {}}
        )
        assert all(e["ph"] != "C" for e in doc["traceEvents"])

    def test_chrome_trace_without_snapshot_has_no_counters(self):
        t = self._sample_tracer()
        buf = io.StringIO()
        obs.write_jsonl(t.spans(), buf, epoch=t.epoch)
        records = obs.read_jsonl(io.StringIO(buf.getvalue()))
        doc = obs.chrome_trace(records, snapshot=None)
        assert {e["ph"] for e in doc["traceEvents"]} == {"X"}

    def test_write_chrome_trace_embeds_snapshot(self, tmp_path):
        t = self._sample_tracer()
        buf = io.StringIO()
        obs.write_jsonl(t.spans(), buf, epoch=t.epoch)
        records = obs.read_jsonl(io.StringIO(buf.getvalue()))
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(
            records, path, snapshot={"counters": {"icap.reconfigurations": 3}}
        )
        doc = json.loads(path.read_text())
        assert any(e["ph"] == "C" for e in doc["traceEvents"])

    def test_stage_table_and_timeline_render(self):
        t = self._sample_tracer()
        buf = io.StringIO()
        obs.write_jsonl(t.spans(), buf, epoch=t.epoch)
        records = obs.read_jsonl(io.StringIO(buf.getvalue()))
        table = obs.render_stage_table(records)
        assert "Map [cad.map]" in table and "total" in table
        timeline = obs.render_timeline(records)
        assert "pipeline.run" in timeline and "cad.map" in timeline
        assert obs.render_timeline([]) == "(empty trace)"


class TestEndToEndPipelineTrace:
    def test_pipeline_emits_paper_stage_spans(self, fp_kernel, tracer):
        from repro.core import JitIseSystem

        result = JitIseSystem().run_application(
            fp_kernel, dataset_size=16, dataset_seed=3
        )
        assert result.output_equal
        spans = tracer.spans()
        names = {s.name for s in spans}

        # Candidate search with its four sub-phases.
        assert {
            "search",
            "search.pruning",
            "search.identification",
            "search.estimation",
            "search.selection",
        } <= names
        # Every Table III CAD stage, plus reconfiguration.
        assert set(obs.TABLE3_SPAN_NAMES) <= names
        assert "icap.reconfigure" in names
        # Pipeline phases.
        assert {
            "pipeline.run",
            "pipeline.baseline",
            "pipeline.specialize",
            "pipeline.adapt",
            "pipeline.verify",
        } <= names

        # CAD stage spans nest under cad.implement -> asip_sp.candidate.
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.name in obs.TABLE3_SPAN_NAMES:
                parent = by_id[span.parent_id]
                assert parent.name == "cad.implement"
                assert by_id[parent.parent_id].name == "asip_sp.candidate"
                assert span.virtual_seconds is not None
        # Per-candidate spans carry the shared/failed accounting attrs.
        for span in spans:
            if span.name == "asip_sp.candidate":
                assert "shared" in span.attrs and "failed" in span.attrs

    def test_trace_exports_and_replays(self, fp_kernel, tracer, tmp_path):
        from repro.core import JitIseSystem

        JitIseSystem().run_application(fp_kernel, dataset_size=16, dataset_seed=3)
        path = tmp_path / "pipeline.jsonl"
        obs.export_tracer(tracer, path)
        records = obs.read_jsonl(path)
        assert obs.validate_trace(records) == []
        table = obs.render_stage_table(records)
        for label in ("C2V", "Syn", "Xst", "Tra", "Map", "PAR", "Bitgen", "ICAP"):
            assert label in table
