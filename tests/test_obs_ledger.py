"""Tests for the run ledger, regression sentinel, and event log."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.ledger import (
    RunLedger,
    fold_stages,
    render_manifest,
    render_run_list,
)
from repro.obs.log import EventLog, read_log, render_tail
from repro.obs.regress import (
    CellDelta,
    compare_manifests,
    flatten_cells,
    median_mad,
    parse_tolerances,
    resolve_tolerance,
)
from repro.obs.tracer import Tracer


def _manifest(run_id="r0001-test", **overrides) -> dict:
    base = {
        "schema": "repro-run/1",
        "run_id": run_id,
        "timestamp": "2026-08-06T12:00:00+0000",
        "command": "analyze",
        "argv": ["analyze", "sor"],
        "config": {"app": "sor", "command": "analyze"},
        "git_rev": "deadbeef",
        "environment": {"python": "3.12.0"},
        "status": 0,
        "wall_seconds": 3.5,
        "stages": {
            "cad.par": {
                "label": "PAR",
                "spans": 3,
                "real_seconds": 1.25,
                "virtual_seconds": 1336.9,
            },
            "search": {
                "label": None,
                "spans": 1,
                "real_seconds": 0.02,
                "virtual_seconds": 0.02,
            },
        },
        "metrics": {"counters": {"icap.reconfigurations": 3}},
        "scalars": {
            "per_app": {
                "sor": {
                    "candidates": 3,
                    "asip_pruned_ratio": 2.35,
                    "toolflow_seconds": 2625.8,
                    "break_even_seconds": 1940.7,
                }
            },
            "aggregate": {"apps": 1, "candidates_total": 3},
        },
        "fidelity": None,
        "artifacts": {},
    }
    base.update(overrides)
    return base


class TestRunLedger:
    def test_reserve_load_and_order(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        first = ledger.reserve_run("analyze")
        second = ledger.reserve_run("fidelity check")
        assert first.startswith("r0001-analyze-")
        assert second.startswith("r0002-fidelity-check-")
        # Only finished runs (with a manifest) are listed.
        assert ledger.run_ids() == []
        for run_id in (first, second):
            with open(ledger.run_dir(run_id) / "manifest.json", "w") as fh:
                json.dump(_manifest(run_id), fh)
        assert ledger.run_ids() == [first, second]
        assert ledger.load(first)["run_id"] == first

    def test_resolve_specs(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ids = []
        for _ in range(3):
            run_id = ledger.reserve_run("analyze")
            with open(ledger.run_dir(run_id) / "manifest.json", "w") as fh:
                json.dump(_manifest(run_id), fh)
            ids.append(run_id)
        assert ledger.resolve("latest") == ids[-1]
        assert ledger.resolve("latest~1") == ids[-2]
        assert ledger.resolve("latest~2") == ids[0]
        assert ledger.resolve(ids[1]) == ids[1]
        assert ledger.resolve("r0002") == ids[1]  # unique prefix
        with pytest.raises(LookupError, match="out of range"):
            ledger.resolve("latest~3")
        with pytest.raises(LookupError, match="ambiguous"):
            ledger.resolve("r000")
        with pytest.raises(LookupError, match="unknown run"):
            ledger.resolve("r9999")

    def test_resolve_empty_ledger_mentions_recording(self, tmp_path):
        with pytest.raises(LookupError, match="--ledger"):
            RunLedger(tmp_path / "missing").resolve("latest")

    def test_recorder_writes_manifest_schema(self, tmp_path):
        tracer = Tracer()
        with tracer.span("cad.par") as sp:
            sp.set_attr("virtual_seconds", 100.0)
        recorder = obs.start_run(
            tmp_path, command="analyze", config={"app": "sor"}, argv=["analyze"]
        )
        assert obs.current_run() is recorder
        recorder.attach_scalars({"per_app": {}, "aggregate": {"apps": 0}})
        manifest_path = obs.finish_run(tracer=tracer, status=0)
        assert obs.current_run() is None
        manifest = json.loads(manifest_path.read_text())
        assert manifest["schema"] == "repro-run/1"
        for key in (
            "run_id", "timestamp", "command", "argv", "config", "git_rev",
            "environment", "status", "wall_seconds", "stages", "metrics",
            "scalars", "fidelity", "artifacts",
        ):
            assert key in manifest
        assert manifest["stages"]["cad.par"]["virtual_seconds"] == 100.0
        assert manifest["artifacts"]["trace"] == "trace.jsonl"
        assert (recorder.run_dir / "trace.jsonl").is_file()

    def test_start_run_refuses_nested_runs(self, tmp_path):
        obs.start_run(tmp_path, command="analyze")
        try:
            with pytest.raises(RuntimeError, match="already active"):
                obs.start_run(tmp_path, command="analyze")
        finally:
            obs.abandon_run()

    def test_fold_stages_sums_both_clocks(self):
        tracer = Tracer()
        for seconds in (10.0, 20.0):
            with tracer.span("cad.map") as sp:
                sp.set_attr("virtual_seconds", seconds)
        with tracer.span("analysis.run"):
            pass
        stages = fold_stages(obs.tracer_records(tracer))
        assert stages["cad.map"]["spans"] == 2
        assert stages["cad.map"]["virtual_seconds"] == pytest.approx(30.0)
        assert stages["cad.map"]["label"] == "Map"
        assert stages["analysis.run"]["virtual_seconds"] is None

    def test_renderings_contain_key_cells(self):
        manifest = _manifest()
        listing = render_run_list([manifest])
        assert "r0001-test" in listing and "analyze" in listing
        shown = render_manifest(manifest)
        assert "cad.par" in shown and "PAR" in shown
        assert "sor" in shown and "2.35" in shown

    def test_attach_block_merges_and_persists(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run_id = ledger.reserve_run("analyze")
        with open(ledger.run_dir(run_id) / "manifest.json", "w") as fh:
            json.dump(_manifest(run_id), fh)
        ledger.attach_block(run_id, "whatif", {"grid": {"cells": {"h0.s0": 1.0}}})
        ledger.attach_block(run_id, "whatif", {"scenario": {"break_even_mean": 2.0}})
        manifest = ledger.load(run_id)
        # Merge keeps the grid recorded before the scenario.
        assert manifest["whatif"]["grid"]["cells"]["h0.s0"] == 1.0
        assert manifest["whatif"]["scenario"]["break_even_mean"] == 2.0
        assert not list(tmp_path.glob("**/*.tmp"))

    def _finished_runs(self, ledger, count):
        ids = []
        for _ in range(count):
            run_id = ledger.reserve_run("analyze")
            with open(ledger.run_dir(run_id) / "manifest.json", "w") as fh:
                json.dump(_manifest(run_id), fh)
            ids.append(run_id)
        return ids

    def test_prune_keeps_newest_runs(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ids = self._finished_runs(ledger, 4)
        assert obs.prune_runs(ledger, keep=2) == ids[:2]
        assert ledger.run_ids() == ids[2:]
        assert not (ledger.run_dir(ids[0])).exists()
        # Pruning below the count is a no-op.
        assert ledger.prune(keep=5) == []

    def test_prune_accepts_a_path(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ids = self._finished_runs(ledger, 2)
        assert obs.prune_runs(tmp_path, keep=1) == ids[:1]

    def test_prune_rejects_negative_keep(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            RunLedger(tmp_path).prune(keep=-1)

    def test_prune_refuses_the_active_run(self, tmp_path):
        ledger = RunLedger(tmp_path)
        recorder = obs.start_run(tmp_path, command="analyze")
        try:
            # Give the active run a manifest so it is enumerated at all.
            with open(recorder.run_dir / "manifest.json", "w") as fh:
                json.dump(_manifest(recorder.run_id), fh)
            assert ledger.prune(keep=0) == []
            assert recorder.run_dir.exists()
        finally:
            obs.abandon_run()


class TestRegressionSentinel:
    def test_parse_tolerances(self):
        parsed = parse_tolerances(["stages.*=0.5", "wall_seconds=info"])
        assert parsed == [("stages.*", 0.5), ("wall_seconds", None)]
        for bad in ("no-equals", "=0.5", "x=abc", "x=-1"):
            with pytest.raises(ValueError):
                parse_tolerances([bad])

    def test_resolve_tolerance_first_match_wins(self):
        tols = [("stages.*", 0.5), ("*", 1e-9)]
        assert resolve_tolerance("stages.cad.par.spans", tols) == 0.5
        assert resolve_tolerance("wall_seconds", tols) == 1e-9

    def test_flatten_cells(self):
        cells = flatten_cells(_manifest())
        assert cells["wall_seconds"] == 3.5
        assert cells["stages.cad.par.virtual_seconds"] == 1336.9
        assert cells["scalars.per_app.sor.candidates"] == 3.0
        assert cells["metrics.counters.icap.reconfigurations"] == 3.0

    def test_median_mad(self):
        median, mad = median_mad([1.0, 2.0, 100.0])
        assert median == 2.0 and mad == 1.0
        median, mad = median_mad([4.0])
        assert median == 4.0 and mad == 0.0

    def test_identical_manifests_pass(self):
        report = compare_manifests(_manifest(), _manifest(run_id="r0002-test"))
        assert report.ok
        assert report.checked  # deterministic cells were actually gated

    def test_changed_deterministic_cell_fails_by_name(self):
        current = _manifest(run_id="r0002-test")
        current["scalars"]["per_app"]["sor"]["candidates"] = 2
        report = compare_manifests(_manifest(), current)
        assert not report.ok
        assert [d.cell for d in report.regressions] == [
            "scalars.per_app.sor.candidates"
        ]
        assert "candidates" in report.regressions[0].describe()

    def test_noisy_cells_are_informational_by_default(self):
        current = _manifest(run_id="r0002-test", wall_seconds=9.9)
        current["stages"]["search"]["real_seconds"] = 0.5
        current["stages"]["search"]["virtual_seconds"] = 0.5
        report = compare_manifests(_manifest(), current)
        assert report.ok
        # ... until an explicit tolerance tightens them into checked cells.
        report = compare_manifests(
            _manifest(), current, tolerances=[("wall_seconds", 0.01)]
        )
        assert [d.cell for d in report.regressions] == ["wall_seconds"]

    def test_disappeared_checked_cell_regresses(self):
        current = _manifest(run_id="r0002-test")
        del current["stages"]["cad.par"]
        report = compare_manifests(_manifest(), current)
        assert not report.ok
        assert any("disappeared" in d.describe() for d in report.regressions)

    def test_config_mismatch_is_reported(self):
        current = _manifest(run_id="r0002-test")
        current["config"] = {"app": "fft", "command": "analyze"}
        report = compare_manifests(_manifest(), current)
        assert any("config.app" in w for w in report.config_mismatches)

    def _critpath_block(self, makespan=76.0):
        return {
            "virtual": {
                "makespan": makespan,
                "serial_seconds": 111.0,
                "dominant_stage": "bitgen",
                "dominant_share": 0.53,
                "stages": {"bitgen": {"total": 60.0, "nodes": 2,
                                      "slack_min": 0.0, "on_path": 1}},
            },
            "real": {"makespan": 1.0, "serial_seconds": 2.0,
                     "dominant_stage": "search", "stages": {}},
        }

    def test_critpath_cells_flatten_and_gate(self):
        baseline = _manifest(critpath=self._critpath_block())
        cells = flatten_cells(baseline)
        assert cells["critpath.virtual.makespan"] == pytest.approx(76.0)
        assert cells["critpath.virtual.stages.bitgen.total"] == 60.0
        current = _manifest(
            run_id="r0002-test", critpath=self._critpath_block(makespan=80.0)
        )
        report = compare_manifests(baseline, current)
        assert [d.cell for d in report.regressions] == [
            "critpath.virtual.makespan"
        ]
        # Real-clock cells are informational: timing noise never gates.
        current = _manifest(run_id="r0002-test", critpath=self._critpath_block())
        current["critpath"]["real"]["makespan"] = 99.0
        assert compare_manifests(baseline, current).ok

    def test_onesided_critpath_block_is_demoted(self):
        baseline = _manifest()
        current = _manifest(
            run_id="r0002-test", critpath=self._critpath_block()
        )
        report = compare_manifests(baseline, current)
        assert report.ok  # appeared cells do not regress...
        assert any(
            "critpath block recorded in only one" in w
            for w in report.config_mismatches
        )  # ...but the workflow difference is called out.

    def test_whatif_grid_cells_gate_and_check_is_informational(self):
        block = {
            "grid": {"workers": 1, "cache_hit_rates": [0], "cad_speedups": [0],
                     "cells": {"h0.s0": 6389.0}},
            "check": {"tolerance": 0.05, "checked": 1, "flagged": 0,
                      "flagged_cells": []},
        }
        baseline = _manifest(whatif=block)
        drifted = json.loads(json.dumps(block))
        drifted["grid"]["cells"]["h0.s0"] = 7000.0
        report = compare_manifests(
            baseline, _manifest(run_id="r0002-test", whatif=drifted)
        )
        assert [d.cell for d in report.regressions] == ["whatif.grid.h0.s0"]
        # check.* counters stay informational (tooling detail, not result).
        counted = json.loads(json.dumps(block))
        counted["check"]["flagged"] = 1
        assert compare_manifests(
            baseline, _manifest(run_id="r0002-test", whatif=counted)
        ).ok

    def test_repeat_history_widens_allowance(self):
        baseline = _manifest()
        # Three repeat samples of a noisy cell scattered around 3.5: the
        # median (3.5) matches the baseline and the MAD band absorbs the
        # scatter, so a tight explicit tolerance still passes...
        history = [
            _manifest(run_id=f"r000{i}-test", wall_seconds=w)
            for i, w in enumerate((3.4, 3.5, 3.6), start=2)
        ]
        report = compare_manifests(
            baseline,
            history[-1],
            tolerances=[("wall_seconds", 1e-6)],
            history=history,
        )
        assert report.ok
        # ... while without the history the unlucky sample fails.
        report = compare_manifests(
            baseline, history[-1], tolerances=[("wall_seconds", 1e-6)]
        )
        assert not report.ok

    def test_render_marks_failures(self):
        current = _manifest(run_id="r0002-test")
        current["scalars"]["per_app"]["sor"]["candidates"] = 2
        text = compare_manifests(_manifest(), current).render()
        assert "FAIL" in text and "scalars.per_app.sor.candidates" in text


class TestEventLog:
    def test_emit_levels_and_payload(self):
        log = EventLog(level="info")
        assert log.emit("skipped", level="debug") is None
        record = log.emit("cad.stage", stage="par", virtual_seconds=1.5)
        assert record["level"] == "info"
        assert record["stage"] == "par"
        assert record["run_id"] is None and record["span_id"] is None
        assert log.records() == [record]

    def test_disabled_log_drops_everything(self):
        log = EventLog(enabled=False)
        assert log.emit("anything") is None
        assert log.records() == []

    def test_span_id_defaults_to_open_span(self):
        log = EventLog()
        tracer = obs.enable_tracing()
        try:
            with tracer.span("search") as sp:
                record = log.emit("search.candidate", decision="accept")
            assert record["span_id"] == sp.span_id
        finally:
            obs.disable_tracing()

    def test_jsonl_round_trip_and_bad_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = EventLog()
        log.open(path)
        log.emit("a", x=1)
        log.emit("b", level="warning")
        log.close()
        records = read_log(path)
        assert [r["event"] for r in records] == ["a", "b"]
        path.write_text('{"event": "ok"}\nnot json\n')
        with pytest.raises(ValueError, match="log line 2"):
            read_log(path)

    def test_pipeline_emits_phase_boundary_events(self, fp_kernel):
        from repro.core import JitIseSystem

        obs.enable_logging()
        try:
            JitIseSystem().run_application(
                fp_kernel, dataset_size=16, dataset_seed=3
            )
            phases = [
                r["phase"]
                for r in obs.get_log().records()
                if r["event"] == "pipeline.phase"
            ]
        finally:
            obs.disable_logging()
        assert phases == ["baseline", "specialize", "adapt", "verify"]

    def test_render_tail_filters_and_truncates(self):
        records = [
            {"ts": 1000.0 + i, "level": "debug" if i % 2 else "info",
             "event": f"e{i}", "run_id": None, "span_id": i or None, "k": i}
            for i in range(6)
        ]
        text = render_tail(records, limit=3)
        assert "(3 earlier records)" in text
        assert "e5" in text and "e0" not in text
        assert "[span 5]" in text
        info_only = render_tail(records, level="info")
        assert "e1" not in info_only and "e2" in info_only
        assert render_tail([], limit=5) == "(empty event log)"


@pytest.fixture(scope="module")
def recorded_runs(tmp_path_factory):
    """Two identical ledger-recorded CLI runs of `analyze sor`."""
    from repro.cli import main

    ledger_dir = tmp_path_factory.mktemp("ledger")
    for _ in range(2):
        assert main(["analyze", "sor", "--ledger", str(ledger_dir)]) == 0
    return ledger_dir


class TestCliEndToEnd:
    def test_self_diff_passes(self, recorded_runs):
        from repro.cli import main

        assert (
            main(
                ["regress", "--baseline", "latest~1", "--ledger",
                 str(recorded_runs)]
            )
            == 0
        )

    def test_tightened_tolerance_fails_naming_cell(
        self, recorded_runs, capsys
    ):
        from repro.cli import main

        status = main(
            ["regress", "--baseline", "latest~1", "--ledger",
             str(recorded_runs), "--tol", "stages.search.real_seconds=1e-9"]
        )
        assert status == 1
        captured = capsys.readouterr()
        assert "REGRESSION stages.search.real_seconds" in captured.err

    def test_log_records_resolve_against_saved_trace(self, recorded_runs):
        ledger = RunLedger(recorded_runs)
        run_dir = ledger.run_dir(ledger.resolve("latest"))
        records = read_log(run_dir / "log.jsonl")
        assert records, "a recorded analyze run must emit log events"
        trace_ids = {
            rec.span_id for rec in obs.read_jsonl(run_dir / "trace.jsonl")
        }
        run_id = run_dir.name
        for rec in records:
            assert rec["run_id"] == run_id
            assert rec["span_id"] in trace_ids
        events = {rec["event"] for rec in records}
        # (pipeline.phase is only emitted by the end-to-end `jit` flow.)
        assert {"search.candidate", "cad.stage", "asip.candidate",
                "icap.reconfigure"} <= events

    def test_manifest_records_scalars_and_argv(self, recorded_runs):
        ledger = RunLedger(recorded_runs)
        manifest = ledger.load(ledger.resolve("latest"))
        assert manifest["command"] == "analyze"
        assert manifest["argv"][0] == "analyze"
        assert manifest["scalars"]["per_app"]["sor"]["candidates"] >= 1
        assert manifest["stages"]["cad.par"]["virtual_seconds"] > 0

    def test_runs_list_show_and_diff(self, recorded_runs, capsys):
        from repro.cli import main

        assert main(["runs", "list", "--ledger", str(recorded_runs)]) == 0
        assert "analyze" in capsys.readouterr().out
        assert main(
            ["runs", "show", "latest", "--ledger", str(recorded_runs)]
        ) == 0
        assert "Per-stage totals" in capsys.readouterr().out
        assert main(
            ["runs", "diff", "latest~1", "latest", "--ledger",
             str(recorded_runs)]
        ) == 0

    def test_runs_list_empty_ledger_is_clean(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["runs", "list", "--ledger", str(tmp_path / "none")]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_runs_gc_keeps_newest(self, tmp_path, capsys):
        from repro.cli import main

        ledger = RunLedger(tmp_path)
        ids = []
        for _ in range(3):
            run_id = ledger.reserve_run("analyze")
            with open(ledger.run_dir(run_id) / "manifest.json", "w") as fh:
                json.dump(_manifest(run_id), fh)
            ids.append(run_id)
        assert main(["runs", "gc", "--keep", "1", "--ledger", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "removed 2 run(s)" in out
        assert ledger.run_ids() == ids[-1:]
        assert main(["runs", "gc", "--keep", "1", "--ledger", str(tmp_path)]) == 0
        assert "nothing to remove" in capsys.readouterr().out
        assert main(["runs", "gc", "--keep", "-1", "--ledger", str(tmp_path)]) == 2

    def test_tail_renders_recorded_log(self, recorded_runs, capsys):
        from repro.cli import main

        ledger = RunLedger(recorded_runs)
        run_dir = ledger.run_dir(ledger.resolve("latest"))
        assert main(["tail", str(run_dir / "log.jsonl"), "-n", "5"]) == 0
        assert "[span" in capsys.readouterr().out

    def test_unknown_baseline_is_an_error(self, recorded_runs, capsys):
        from repro.cli import main

        status = main(
            ["regress", "--baseline", "r9999", "--ledger", str(recorded_runs)]
        )
        assert status == 2
        assert "unknown run" in capsys.readouterr().err
