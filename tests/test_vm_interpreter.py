"""Tests for the interpreter and profiler."""

import pytest

from repro.frontend import compile_source
from repro.vm import Interpreter, VMError
from repro.vm.costmodel import PPC405_COST_MODEL
from repro.vm.profiler import static_block_costs

from conftest import build_sumsq_module, run_main


class TestExecution:
    def test_sumsq_unoptimized(self):
        module = build_sumsq_module()
        assert Interpreter(module).run("sumsq", [10]).return_value == 285

    def test_argument_count_checked(self):
        module = build_sumsq_module()
        with pytest.raises(VMError, match="expected 1 args"):
            Interpreter(module).run("sumsq", [])

    def test_division_by_zero_traps(self):
        src = "int main() { int z = dataset_size(); return 5 / z; }"
        module = compile_source(src, "trap").module
        with pytest.raises(VMError, match="div"):
            Interpreter(module, dataset_size=0).run("main")

    def test_step_limit(self):
        src = "int main() { int i = 0; while (1) { i++; } return i; }"
        module = compile_source(src, "inf").module
        with pytest.raises(VMError, match="step limit"):
            Interpreter(module, max_steps=10_000).run("main")

    def test_global_state_persists_across_runs(self):
        src = """
int counter = 0;
int main() { counter++; return counter; }
"""
        module = compile_source(src, "persist").module
        interp = Interpreter(module)
        assert interp.run("main").return_value == 1
        assert interp.run("main").return_value == 2  # same memory image

    def test_output_capture_order(self):
        src = """
int main() {
    print_i32(1); print_f64(2.5); print_i64(3);
    return 0;
}
"""
        assert run_main(src).output == [1, 2.5, 3]

    def test_unknown_function(self):
        module = build_sumsq_module()
        with pytest.raises(KeyError):
            Interpreter(module).run("nope")


class TestProfile:
    def test_block_counts_match_loop_trip_counts(self):
        module = build_sumsq_module()
        result = Interpreter(module).run("sumsq", [10])
        prof = result.profile
        assert prof.count_of("sumsq", "entry") == 1
        assert prof.count_of("sumsq", "loop") == 11  # 10 iterations + exit check
        assert prof.count_of("sumsq", "body") == 10
        assert prof.count_of("sumsq", "done") == 1

    def test_steps_equals_dynamic_instructions(self):
        module = build_sumsq_module()
        result = Interpreter(module).run("sumsq", [4])
        assert result.steps == result.profile.total_dynamic_instructions

    def test_merged_profiles_add_counts(self):
        module = build_sumsq_module()
        p1 = Interpreter(module).run("sumsq", [3]).profile
        p2 = Interpreter(module).run("sumsq", [5]).profile
        merged = p1.merged_with(p2)
        assert merged.count_of("sumsq", "body") == 8

    def test_total_cycles_positive_and_additive(self):
        module = build_sumsq_module()
        prof = Interpreter(module).run("sumsq", [6]).profile
        cm = PPC405_COST_MODEL
        total = prof.total_cycles(module, cm)
        assert total > 0
        costs = static_block_costs(module, cm)
        manual = sum(
            bp.count * costs[key] for key, bp in prof.blocks.items()
        )
        assert total == pytest.approx(manual)

    def test_block_cost_override_applied(self):
        module = build_sumsq_module()
        prof = Interpreter(module).run("sumsq", [6]).profile
        cm = PPC405_COST_MODEL

        def override(func, block):
            return 1.0 if block == "body" else None

        total = prof.total_cycles(module, cm, override)
        base = prof.total_cycles(module, cm)
        assert total < base

    def test_time_shares_sum_to_one(self):
        module = build_sumsq_module()
        prof = Interpreter(module).run("sumsq", [6]).profile
        shares = prof.block_time_shares(module, PPC405_COST_MODEL)
        assert sum(shares.values()) == pytest.approx(1.0)


class TestCostModel:
    def test_fp_more_expensive_than_int(self):
        from repro.ir import F64, I32, IRBuilder, Module

        m = Module("t")
        f = m.declare_function("f", F64, [("x", F64), ("i", I32)])
        b = IRBuilder(f.add_block("entry"))
        fadd = b.fadd(f.args[0], f.args[0])
        iadd = b.add(f.args[1], f.args[1])
        b.ret(fadd)
        cm = PPC405_COST_MODEL
        assert cm.cycles_for(fadd) > 5 * cm.cycles_for(iadd)

    def test_f32_cheaper_than_f64(self):
        from repro.ir import F32, F64, IRBuilder, Module

        m = Module("t")
        f = m.declare_function("f", F32, [("a", F32), ("b", F64)])
        bl = IRBuilder(f.add_block("entry"))
        f32op = bl.fadd(f.args[0], f.args[0])
        f64op = bl.fadd(f.args[1], f.args[1])
        bl.ret(f32op)
        cm = PPC405_COST_MODEL
        assert cm.cycles_for(f32op) < cm.cycles_for(f64op)

    def test_soft_float_scale(self):
        from repro.ir import F64, IRBuilder, Module

        m = Module("t")
        f = m.declare_function("f", F64, [("x", F64)])
        b = IRBuilder(f.add_block("entry"))
        op = b.fmul(f.args[0], f.args[0])
        b.ret(op)
        base = PPC405_COST_MODEL
        scaled = base.with_soft_float_scale(3.0)
        assert scaled.cycles_for(op) == pytest.approx(3.0 * base.cycles_for(op))

    def test_seconds_conversion(self):
        cm = PPC405_COST_MODEL
        assert cm.seconds(cm.clock_hz) == pytest.approx(1.0)
