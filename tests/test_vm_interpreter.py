"""Tests for the interpreter and profiler."""

import math
import random

import pytest

from repro.frontend import compile_source
from repro.ir import F64, IRBuilder, Module
from repro.ir.opcodes import FCmpPred, ICmpPred, Opcode
from repro.ir.passes.constfold import fold_binary, fold_fcmp, fold_icmp
from repro.ir.types import I1, I8, I32, I64
from repro.vm import Interpreter, VMError
from repro.vm.costmodel import PPC405_COST_MODEL
from repro.vm.profiler import static_block_costs

from conftest import build_sumsq_module, run_main


class TestExecution:
    def test_sumsq_unoptimized(self):
        module = build_sumsq_module()
        assert Interpreter(module).run("sumsq", [10]).return_value == 285

    def test_argument_count_checked(self):
        module = build_sumsq_module()
        with pytest.raises(VMError, match="expected 1 args"):
            Interpreter(module).run("sumsq", [])

    def test_division_by_zero_traps(self):
        src = "int main() { int z = dataset_size(); return 5 / z; }"
        module = compile_source(src, "trap").module
        with pytest.raises(VMError, match="div"):
            Interpreter(module, dataset_size=0).run("main")

    def test_step_limit(self):
        src = "int main() { int i = 0; while (1) { i++; } return i; }"
        module = compile_source(src, "inf").module
        with pytest.raises(VMError, match="step limit"):
            Interpreter(module, max_steps=10_000).run("main")

    def test_global_state_persists_across_runs(self):
        src = """
int counter = 0;
int main() { counter++; return counter; }
"""
        module = compile_source(src, "persist").module
        interp = Interpreter(module)
        assert interp.run("main").return_value == 1
        assert interp.run("main").return_value == 2  # same memory image

    def test_output_capture_order(self):
        src = """
int main() {
    print_i32(1); print_f64(2.5); print_i64(3);
    return 0;
}
"""
        assert run_main(src).output == [1, 2.5, 3]

    def test_unknown_function(self):
        module = build_sumsq_module()
        with pytest.raises(KeyError):
            Interpreter(module).run("nope")


class TestProfile:
    def test_block_counts_match_loop_trip_counts(self):
        module = build_sumsq_module()
        result = Interpreter(module).run("sumsq", [10])
        prof = result.profile
        assert prof.count_of("sumsq", "entry") == 1
        assert prof.count_of("sumsq", "loop") == 11  # 10 iterations + exit check
        assert prof.count_of("sumsq", "body") == 10
        assert prof.count_of("sumsq", "done") == 1

    def test_steps_equals_dynamic_instructions(self):
        module = build_sumsq_module()
        result = Interpreter(module).run("sumsq", [4])
        assert result.steps == result.profile.total_dynamic_instructions

    def test_merged_profiles_add_counts(self):
        module = build_sumsq_module()
        p1 = Interpreter(module).run("sumsq", [3]).profile
        p2 = Interpreter(module).run("sumsq", [5]).profile
        merged = p1.merged_with(p2)
        assert merged.count_of("sumsq", "body") == 8

    def test_total_cycles_positive_and_additive(self):
        module = build_sumsq_module()
        prof = Interpreter(module).run("sumsq", [6]).profile
        cm = PPC405_COST_MODEL
        total = prof.total_cycles(module, cm)
        assert total > 0
        costs = static_block_costs(module, cm)
        manual = sum(
            bp.count * costs[key] for key, bp in prof.blocks.items()
        )
        assert total == pytest.approx(manual)

    def test_block_cost_override_applied(self):
        module = build_sumsq_module()
        prof = Interpreter(module).run("sumsq", [6]).profile
        cm = PPC405_COST_MODEL

        def override(func, block):
            return 1.0 if block == "body" else None

        total = prof.total_cycles(module, cm, override)
        base = prof.total_cycles(module, cm)
        assert total < base

    def test_time_shares_sum_to_one(self):
        module = build_sumsq_module()
        prof = Interpreter(module).run("sumsq", [6]).profile
        shares = prof.block_time_shares(module, PPC405_COST_MODEL)
        assert sum(shares.values()) == pytest.approx(1.0)


def _binary_interp(op, ty):
    """Interpreter over ``f(a, b) = op(a, b)`` for one opcode/type."""
    m = Module("parity")
    f = m.declare_function("f", ty, [("a", ty), ("b", ty)])
    b = IRBuilder(f.add_block("entry"))
    b.ret(b.binop(op, f.args[0], f.args[1]))
    return Interpreter(m)


def _int_operands(rng, ty, n=24):
    lo, hi = -(1 << (ty.bits - 1)), (1 << (ty.bits - 1)) - 1
    return [0, 1, -1, 2, lo, hi] + [rng.randint(lo, hi) for _ in range(n)]


FLOAT_SPECIALS = [0.0, -0.0, 1.0, -1.0, math.inf, -math.inf, math.nan, 1e-300, 1e300]


def _float_operands(rng, n=24):
    return FLOAT_SPECIALS + [rng.uniform(-1e6, 1e6) for _ in range(n)]


def _same(x, y) -> bool:
    if isinstance(x, float) and math.isnan(x):
        return isinstance(y, float) and math.isnan(y)
    return x == y


class TestConstfoldParity:
    """The interpreter inlines its hot arithmetic handlers (wrapping add/
    sub/mul, bitwise ops, the common icmp predicates) instead of calling
    the constfold evaluators. Randomized operands pin the two
    implementations against each other: folding a constant expression at
    compile time and executing it at run time must agree bit-for-bit,
    otherwise optimization level changes program output.
    """

    DIV_OPS = (Opcode.SDIV, Opcode.UDIV, Opcode.SREM, Opcode.UREM)
    INT_OPS = (
        Opcode.ADD, Opcode.SUB, Opcode.MUL,
        Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.SHL, Opcode.LSHR, Opcode.ASHR,
    ) + DIV_OPS
    FLOAT_OPS = (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FREM)

    @pytest.mark.parametrize("ty", [I8, I32, I64], ids=str)
    @pytest.mark.parametrize("op", INT_OPS, ids=lambda o: o.value)
    def test_int_binary_matches_fold(self, op, ty):
        rng = random.Random(f"{op.value}/{ty.bits}")
        interp = _binary_interp(op, ty)
        vals = _int_operands(rng, ty)
        for _ in range(40):
            a, b = rng.choice(vals), rng.choice(vals)
            if op in self.DIV_OPS and b == 0:
                continue
            executed = interp.run("f", [a, b]).return_value
            folded = fold_binary(op, ty, a, b)
            assert executed == folded, f"{op.value} {ty}: {a}, {b}"

    @pytest.mark.parametrize("op", DIV_OPS, ids=lambda o: o.value)
    def test_division_by_zero_traps_not_folds(self, op):
        from repro.ir.passes.constfold import ConstantFoldError

        with pytest.raises(ConstantFoldError):
            fold_binary(op, I32, 7, 0)
        with pytest.raises(VMError, match="zero"):
            _binary_interp(op, I32).run("f", [7, 0])

    @pytest.mark.parametrize("op", FLOAT_OPS, ids=lambda o: o.value)
    def test_float_binary_matches_fold(self, op):
        rng = random.Random(op.value)
        interp = _binary_interp(op, F64)
        vals = _float_operands(rng)
        for _ in range(40):
            a, b = rng.choice(vals), rng.choice(vals)
            executed = interp.run("f", [a, b]).return_value
            folded = fold_binary(op, F64, a, b)
            assert _same(executed, folded), f"{op.value}: {a}, {b}"

    @pytest.mark.parametrize("pred", list(ICmpPred), ids=lambda p: p.value)
    def test_icmp_matches_fold(self, pred):
        rng = random.Random(pred.value)
        m = Module("parity")
        f = m.declare_function("f", I1, [("a", I32), ("b", I32)])
        b = IRBuilder(f.add_block("entry"))
        b.ret(b.icmp(pred, f.args[0], f.args[1]))
        interp = Interpreter(m)
        vals = _int_operands(rng, I32)
        for _ in range(40):
            a, c = rng.choice(vals), rng.choice(vals)
            executed = interp.run("f", [a, c]).return_value
            assert executed == fold_icmp(pred, I32, a, c), f"{pred.value}: {a}, {c}"

    @pytest.mark.parametrize("pred", list(FCmpPred), ids=lambda p: p.value)
    def test_fcmp_matches_fold(self, pred):
        rng = random.Random(pred.value)
        m = Module("parity")
        f = m.declare_function("f", I1, [("a", F64), ("b", F64)])
        b = IRBuilder(f.add_block("entry"))
        b.ret(b.fcmp(pred, f.args[0], f.args[1]))
        interp = Interpreter(m)
        vals = _float_operands(rng)
        for _ in range(40):
            a, c = rng.choice(vals), rng.choice(vals)
            executed = interp.run("f", [a, c]).return_value
            assert executed == fold_fcmp(pred, a, c), f"{pred.value}: {a}, {c}"


class TestCostModel:
    def test_fp_more_expensive_than_int(self):
        from repro.ir import F64, I32, IRBuilder, Module

        m = Module("t")
        f = m.declare_function("f", F64, [("x", F64), ("i", I32)])
        b = IRBuilder(f.add_block("entry"))
        fadd = b.fadd(f.args[0], f.args[0])
        iadd = b.add(f.args[1], f.args[1])
        b.ret(fadd)
        cm = PPC405_COST_MODEL
        assert cm.cycles_for(fadd) > 5 * cm.cycles_for(iadd)

    def test_f32_cheaper_than_f64(self):
        from repro.ir import F32, F64, IRBuilder, Module

        m = Module("t")
        f = m.declare_function("f", F32, [("a", F32), ("b", F64)])
        bl = IRBuilder(f.add_block("entry"))
        f32op = bl.fadd(f.args[0], f.args[0])
        f64op = bl.fadd(f.args[1], f.args[1])
        bl.ret(f32op)
        cm = PPC405_COST_MODEL
        assert cm.cycles_for(f32op) < cm.cycles_for(f64op)

    def test_soft_float_scale(self):
        from repro.ir import F64, IRBuilder, Module

        m = Module("t")
        f = m.declare_function("f", F64, [("x", F64)])
        b = IRBuilder(f.add_block("entry"))
        op = b.fmul(f.args[0], f.args[0])
        b.ret(op)
        base = PPC405_COST_MODEL
        scaled = base.with_soft_float_scale(3.0)
        assert scaled.cycles_for(op) == pytest.approx(3.0 * base.cycles_for(op))

    def test_seconds_conversion(self):
        cm = PPC405_COST_MODEL
        assert cm.seconds(cm.clock_hz) == pytest.approx(1.0)
