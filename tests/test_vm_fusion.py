"""Superinstruction fusion: differential and structural tests.

The load-bearing property is *observational invisibility*: for any
program, the fused dispatch path must produce the same outputs, the same
per-block execution counts, and a bit-identical virtual PPC405 clock as
the plain path — only the real clock may move. The differential tests
below check exactly that on randomized straight-line programs (mirroring
the paper's argument that ISE rewriting must preserve semantics), and the
structural tests pin down the matcher's barriers (no overlaps, no CUSTOM,
no phis, no terminators) and the trap parity of fused evaluators.
"""

import random

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.opcodes import FCmpPred, ICmpPred, Opcode
from repro.ir.types import F64, I1, I32, I64
from repro.vm.costmodel import PPC405_COST_MODEL
from repro.vm.fusion import (
    DEFAULT_FUSE_TOP,
    FUSION_EXCLUDED,
    build_fusion_plan,
    plan_from_candidates,
)
from repro.vm.interpreter import Interpreter, VMError
from repro.vm.profiler import BlockTimeSampler
from repro.obs.vmprof import mine_superinsns


def run_both(module, entry="main", args=None, sample_interval=0, top=10):
    """Run *module* plain, mine its own sequences, run fused; return both.

    With ``sample_interval > 0`` the fused run goes through the
    fused+sampled twin loop (the plain reference stays unsampled — the
    sampler itself is already proven invisible by test_vmprof).
    """
    plain = Interpreter(module).run(entry, args)
    candidates = mine_superinsns(module, plain.profile, 0.0, top=top)
    plan = plan_from_candidates(module, candidates, top)
    sampler = (
        BlockTimeSampler(interval=sample_interval)
        if sample_interval > 0
        else None
    )
    fused = Interpreter(module, sampler=sampler, fusion=plan).run(entry, args)
    return plain, fused, plan


def assert_invisible(module, plain, fused):
    assert fused.return_value == plain.return_value
    assert fused.output == plain.output
    assert fused.steps == plain.steps
    assert {k: p.count for k, p in fused.profile.blocks.items()} == {
        k: p.count for k, p in plain.profile.blocks.items()
    }
    assert fused.profile.total_cycles(
        module, PPC405_COST_MODEL
    ) == plain.profile.total_cycles(module, PPC405_COST_MODEL)


# -- randomized differential property ---------------------------------------
def build_random_module(seed: int, body_ops: int = 28) -> Module:
    """A random counted loop of straight-line int/float/memory operations.

    Divisors are forced non-zero (``x | 1`` / ``x*x + 1.0``) so every
    generated program is trap-free and the plain/fused comparison checks
    values, not crash behaviour (trap parity has its own test).
    """
    rng = random.Random(seed)
    module = Module(f"rand{seed}")
    func = module.declare_function("main", I32, [])
    entry = func.add_block("entry")
    loop = func.add_block("loop")
    body = func.add_block("body")
    done = func.add_block("done")

    b = IRBuilder(entry)
    buf = b.alloca(I32, 16)
    fbuf = b.alloca(F64, 8)
    acc_slot = b.alloca(I32)
    i_slot = b.alloca(I32)
    for k in range(16):
        b.store(b.i32(rng.randrange(-50, 50)), b.gep(buf, b.i32(k), 4))
    for k in range(8):
        b.store(
            b.f64(rng.uniform(-4.0, 4.0)), b.gep(fbuf, b.i32(k), 8)
        )
    b.store(b.i32(rng.randrange(100)), acc_slot)
    b.store(b.i32(0), i_slot)
    b.br(loop)

    b.set_block(loop)
    i = b.load(I32, i_slot)
    cond = b.icmp(ICmpPred.SLT, i, b.i32(200))
    b.condbr(cond, body, done)

    b.set_block(body)
    i = b.load(I32, i_slot)
    ints = [i, b.load(I32, acc_slot)]
    floats = []
    bools = []
    for _ in range(body_ops):
        kind = rng.randrange(10)
        if kind < 3:
            op = rng.choice([b.add, b.sub, b.mul, b.and_, b.or_, b.xor])
            ints.append(op(rng.choice(ints), rng.choice(ints)))
        elif kind == 3:
            op = rng.choice([b.sdiv, b.srem])
            ints.append(
                op(rng.choice(ints), b.or_(rng.choice(ints), b.i32(1)))
            )
        elif kind == 4:
            pred = rng.choice(list(ICmpPred))
            bools.append(b.icmp(pred, rng.choice(ints), rng.choice(ints)))
            ints.append(b.zext(bools[-1], I32))
        elif kind == 5 and bools:
            ints.append(
                b.select(
                    rng.choice(bools), rng.choice(ints), rng.choice(ints)
                )
            )
        elif kind == 6:
            idx = b.and_(rng.choice(ints), b.i32(15))
            slot = b.gep(buf, idx, 4)
            if rng.random() < 0.5:
                b.store(rng.choice(ints), slot)
            ints.append(b.load(I32, slot))
        elif kind == 7:
            floats.append(b.sitofp(rng.choice(ints), F64))
        elif kind == 8 and floats:
            op = rng.choice([b.fadd, b.fsub, b.fmul])
            floats.append(op(rng.choice(floats), rng.choice(floats)))
            if rng.random() < 0.3:
                floats.append(b.fneg(rng.choice(floats)))
        elif kind == 9 and floats:
            f = rng.choice(floats)
            den = b.fadd(b.fmul(f, f), b.f64(1.0))
            floats.append(b.fdiv(rng.choice(floats), den))
            bools.append(
                b.fcmp(FCmpPred.OLT, floats[-1], b.f64(1e6))
            )
            ints.append(b.zext(bools[-1], I32))
        else:
            ints.append(b.add(rng.choice(ints), b.i32(rng.randrange(7))))
    if floats:
        idx = b.and_(rng.choice(ints), b.i32(7))
        b.store(rng.choice(floats), b.gep(fbuf, idx, 8))
    b.store(b.xor(rng.choice(ints), rng.choice(ints)), acc_slot)
    b.store(b.add(i, b.i32(1)), i_slot)
    b.br(loop)

    b.set_block(done)
    b.ret(b.load(I32, acc_slot))
    return module


@pytest.mark.parametrize("seed", range(8))
def test_random_programs_fused_identical(seed):
    module = build_random_module(seed)
    plain, fused, plan = run_both(module)
    # Random straight-line bodies of this size must yield fusible sites —
    # otherwise the test exercises nothing.
    assert plan.site_count > 0
    assert_invisible(module, plain, fused)


@pytest.mark.parametrize("interval", [1, 3, 64])
def test_fused_sequences_span_sampler_boundaries(interval):
    """Fused sites execute across sampler ticks without bending accounting.

    With interval=1 every block entry ticks, so every fused sequence runs
    immediately after a tick; odd intervals put ticks mid-loop between
    blocks that both contain fused sites.
    """
    module = build_random_module(3)
    plain, fused, plan = run_both(module, sample_interval=interval)
    assert plan.site_count > 0
    assert_invisible(module, plain, fused)


# -- structural: matcher barriers -------------------------------------------
def _straightline_module(opcodes_builder) -> Module:
    module = Module("straight")
    func = module.declare_function("main", I32, [])
    entry = func.add_block("entry")
    b = IRBuilder(entry)
    opcodes_builder(b)
    return module


def test_matcher_sites_do_not_overlap():
    module = _straightline_module(
        lambda b: b.ret(
            b.add(b.add(b.add(b.add(b.i32(1), b.i32(2)), b.i32(3)), b.i32(4)), b.i32(5))
        )
    )
    plan = build_fusion_plan(module, [("add", "add")])
    entry = module.function("main").entry
    sites = plan.sites_for(entry)
    # Four adds support two non-overlapping add+add sites, not three.
    assert [s.start for s in sites] == [0, 2]
    assert all(s.length == 2 for s in sites)


def test_matcher_excluded_sequences_dropped():
    module = build_random_module(0)
    plan = build_fusion_plan(
        module,
        [("custom", "add"), ("call", "load"), ("add",), ("add", "add")],
    )
    # custom/call sequences and the length-1 sequence are all rejected.
    assert plan.sequences == (("add", "add"),)


def test_matcher_never_spans_custom():
    """A CUSTOM instruction is a hard barrier for site matching."""

    def build(b):
        x = b.add(b.i32(1), b.i32(2))
        y = b.add(x, b.i32(3))
        b.ret(b.add(y, b.i32(4)))

    module = _straightline_module(build)
    entry = module.function("main").entry
    # Splice a CUSTOM between the first and second add, patcher-style.
    custom = Instruction(
        Opcode.CUSTOM, I32, [entry.instructions[0]], "c", custom_id=7
    )
    entry.insert(1, custom)
    plan = build_fusion_plan(module, [("add", "add"), ("add", "add", "add")])
    starts = {s.start for s in plan.sites_for(entry)}
    # Only the adds *after* the custom are adjacent now: positions 2,3.
    assert starts == {2}


def test_matcher_never_fuses_phis_or_terminators():
    module = build_random_module(1)
    for func in module.defined_functions():
        for block in func.blocks:
            plan = build_fusion_plan(
                module, [(i.opcode.value,) * 2 for i in block.instructions]
            )
            for sites in plan.sites_by_block.values():
                for site in sites:
                    assert not any(
                        op in FUSION_EXCLUDED for op in site.sequence
                    )


# -- structural: codegen coverage -------------------------------------------
def test_every_fusible_opcode_class_fuses():
    """One straight-line block exercising every fusible opcode kind."""

    def build(b):
        slot = b.alloca(I64)
        a = b.add(b.i32(7), b.i32(35))
        s = b.sub(a, b.i32(3))
        m = b.mul(s, s)
        d = b.sdiv(m, b.i32(5))
        r = b.srem(d, b.i32(97))
        sh = b.shl(r, b.i32(2))
        lr = b.lshr(sh, b.i32(1))
        ar = b.ashr(lr, b.i32(1))
        w = b.xor(b.or_(b.and_(ar, b.i32(255)), b.i32(8)), b.i32(3))
        c = b.icmp(ICmpPred.ULT, w, b.i32(100))
        sel = b.select(c, w, b.i32(41))
        wide = b.sext(sel, I64)
        b.store(wide, slot)
        back = b.load(I64, slot)
        nar = b.trunc(back, I32)
        f = b.sitofp(nar, F64)
        g = b.fneg(b.fmul(b.fadd(f, b.f64(1.5)), b.f64(2.0)))
        h = b.fdiv(b.fsub(g, b.f64(1.0)), b.f64(0.0))  # signed-inf path
        bad = b.fcmp(FCmpPred.OLT, h, b.f64(0.0))
        b.ret(b.add(b.zext(bad, I32), nar))

    module = _straightline_module(build)
    entry = module.function("main").entry
    ops = tuple(i.opcode.value for i in entry.instructions[:-1])
    # Fuse the entire straight-line body as one superinstruction each of
    # lengths 2..4 would; use maximal coverage with one long sequence.
    plain = Interpreter(module).run("main")
    plan = build_fusion_plan(module, [ops])
    assert plan.site_count == 1
    fused = Interpreter(module, fusion=plan).run("main")
    assert_invisible(module, plain, fused)


def test_trap_parity_division_by_zero():
    def build(b):
        x = b.add(b.i32(5), b.i32(1))
        b.ret(b.sdiv(x, b.sub(b.i32(3), b.i32(3))))

    module = _straightline_module(build)
    with pytest.raises(VMError) as plain_exc:
        Interpreter(module).run("main")
    plan = build_fusion_plan(
        module,
        [
            tuple(
                i.opcode.value
                for i in module.function("main").entry.instructions[:-1]
            )
        ],
    )
    assert plan.site_count == 1
    with pytest.raises(VMError) as fused_exc:
        Interpreter(module, fusion=plan).run("main")
    assert str(fused_exc.value) == str(plain_exc.value)


def test_global_operands_bind_addresses():
    module = Module("g")
    gv = module.add_global("table", I32, 4, initializer=[11, 22, 33, 44])
    func = module.declare_function("main", I32, [])
    b = IRBuilder(func.add_block("entry"))
    p = b.gep(gv, b.i32(2), 4)
    v = b.load(I32, p)
    b.ret(b.add(v, b.i32(9)))

    plain = Interpreter(module).run("main")
    plan = build_fusion_plan(module, [("gep", "load", "add")])
    assert plan.site_count == 1
    fused = Interpreter(module, fusion=plan).run("main")
    assert plain.return_value == fused.return_value == 42
    assert_invisible(module, plain, fused)


# -- the app-level loop -------------------------------------------------------
def test_compiled_app_fusion_plan_cached_and_invisible():
    from repro.apps import compile_app, get_app

    app = compile_app(get_app("sor"))
    plan = app.fusion_plan(top=DEFAULT_FUSE_TOP)
    assert plan is app.fusion_plan()  # cached, built once per CompiledApp
    assert plan.site_count > 0

    plain = app.run()
    fused = app.run(fusion=plan)
    assert_invisible(app.module, plain, fused)


def test_fusion_report_in_profile():
    from repro.obs.vmprof import profile_app

    prof = profile_app(
        "sor", sample_interval=0, calibrate=False, fuse=6
    )
    assert prof.fusion is not None
    assert prof.fusion.top == 6
    assert prof.fusion.identical
    assert prof.fusion.sites > 0
    assert prof.fusion.dispatches_removed > 0
    assert prof.fusion.sequences
