"""Tests for pruning filters and the candidate-search pipeline."""

import pytest

from repro.ise import CandidateSearch, parse_filter_spec
from repro.ise.pruning import NO_PRUNING, PruningFilter
from repro.ise.maxmiso import MaxMisoIdentifier
from repro.ise.singlecut import SingleCutIdentifier


class TestFilterSpec:
    def test_parse_paper_spec(self):
        f = parse_filter_spec("@50pS3L")
        assert f.time_share_pct == 50.0
        assert f.max_blocks == 3
        assert f.spec == "@50pS3L"

    @pytest.mark.parametrize("spec", ["@0pS3L", "@101pS3L", "@50pS0L", "50pS3L", "@50p3L"])
    def test_rejects_malformed(self, spec):
        with pytest.raises(ValueError):
            parse_filter_spec(spec)

    def test_round_trip(self):
        for spec in ("@25pS1L", "@90pS5L"):
            assert parse_filter_spec(spec).spec == spec


class TestBlockSelection:
    def test_selects_hottest_blocks(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        selected = PruningFilter().select_blocks(module, profile)
        assert 1 <= len(selected) <= 3
        shares = profile.block_time_shares(
            module, PruningFilter().cost_model
        )
        hottest = max(shares, key=shares.get)
        assert hottest in selected

    def test_block_budget_respected(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        f = PruningFilter(time_share_pct=99.0, max_blocks=2)
        assert len(f.select_blocks(module, profile)) <= 2

    def test_no_pruning_selects_all_executed_blocks(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        selected = NO_PRUNING.select_blocks(module, profile)
        executed = {k for k, p in profile.blocks.items() if p.count > 0}
        shares = profile.block_time_shares(module, NO_PRUNING.cost_model)
        nonzero = {k for k, s in shares.items() if s > 0}
        assert set(selected) == nonzero

    def test_monotone_in_share(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        small = PruningFilter(time_share_pct=10.0, max_blocks=1)
        large = PruningFilter(time_share_pct=95.0, max_blocks=100)
        assert len(small.select_blocks(module, profile)) <= len(
            large.select_blocks(module, profile)
        )


class TestCandidateSearch:
    def test_search_returns_profitable_candidates(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        result = CandidateSearch().run(module, profile)
        assert result.candidate_count >= 1
        for est in result.selected:
            assert est.cycles_saved > 0 or result.candidate_count <= 5

    def test_search_time_measured(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        result = CandidateSearch().run(module, profile)
        assert 0 < result.search_seconds < 10.0

    def test_pruned_instructions_counted(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        result = CandidateSearch().run(module, profile)
        assert result.pruned_block_instructions > 0

    def test_selection_ordered_by_total_savings(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        result = CandidateSearch().run(module, profile)
        totals = [
            est.cycles_saved
            * profile.count_of(est.candidate.function, est.candidate.block)
            for est in result.selected
        ]
        assert totals == sorted(totals, reverse=True)

    def test_no_pruning_finds_superset(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        pruned = CandidateSearch().run(module, profile)
        full = CandidateSearch(
            pruning=NO_PRUNING, min_total_cycles_saved=0.0
        ).run(module, profile)
        assert full.identified_count >= pruned.identified_count

    def test_alternative_identifier_pluggable(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        result = CandidateSearch(
            identifier=SingleCutIdentifier(search_budget=2000)
        ).run(module, profile)
        for est in result.selected:
            assert est.candidate.size >= 2

    def test_fallback_when_nothing_profitable(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        # an absurd threshold rejects everything profitable; fallback kicks in
        result = CandidateSearch(min_total_cycles_saved=1e18).run(module, profile)
        assert 0 < result.candidate_count <= 5

    def test_avg_candidate_size(self, fp_kernel_profile):
        module, profile, _ = fp_kernel_profile
        result = CandidateSearch().run(module, profile)
        assert result.avg_candidate_size >= 2.0
