"""Tests for the mem2reg SSA-construction pass."""

import pytest

from repro.ir import I32, IRBuilder, Module, verify_function
from repro.ir.opcodes import ICmpPred, Opcode
from repro.ir.passes import Mem2RegPass
from repro.vm import Interpreter

from conftest import build_sumsq_module


def count_opcodes(func, *opcodes):
    return sum(1 for i in func.instructions() if i.opcode in opcodes)


class TestPromotion:
    def test_loads_stores_removed(self):
        module = build_sumsq_module()
        func = module.function("sumsq")
        assert count_opcodes(func, Opcode.LOAD) > 0
        changed = Mem2RegPass().run(module)
        assert changed
        assert count_opcodes(func, Opcode.LOAD, Opcode.STORE, Opcode.ALLOCA) == 0
        verify_function(func)

    def test_phis_inserted_at_join(self):
        module = build_sumsq_module()
        func = module.function("sumsq")
        Mem2RegPass().run(module)
        loop = func.block_named("loop")
        assert len(loop.phis()) == 2  # acc and i

    def test_semantics_preserved(self):
        module = build_sumsq_module()
        before = Interpreter(module).run("sumsq", [10]).return_value
        Mem2RegPass().run(module)
        after = Interpreter(module).run("sumsq", [10]).return_value
        assert before == after == 285

    def test_idempotent(self):
        module = build_sumsq_module()
        Mem2RegPass().run(module)
        assert Mem2RegPass().run(module) is False


class TestNonPromotable:
    def test_array_alloca_not_promoted(self):
        m = Module("t")
        f = m.declare_function("f", I32, [("i", I32)])
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        arr = b.alloca(I32, 8)
        addr = b.gep(arr, f.args[0], 4)
        b.store(b.i32(7), addr)
        v = b.load(I32, addr)
        b.ret(v)
        Mem2RegPass().run(m)
        assert count_opcodes(f, Opcode.ALLOCA) == 1  # still there

    def test_escaping_alloca_not_promoted(self):
        m = Module("t")
        g = m.declare_function("g", I32, [("p", __import__("repro.ir.types", fromlist=["PTR"]).PTR)])
        ge = g.add_block("entry")
        gb = IRBuilder(ge)
        gb.ret(gb.load(I32, g.args[0]))

        f = m.declare_function("f", I32, [])
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        slot = b.alloca(I32)
        b.store(b.i32(3), slot)
        call = b.call(g, [slot])  # address escapes
        b.ret(call)
        Mem2RegPass().run(m)
        assert count_opcodes(f, Opcode.ALLOCA) == 1

    def test_uninitialized_load_becomes_undef_zero(self):
        m = Module("t")
        f = m.declare_function("f", I32, [])
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        slot = b.alloca(I32)
        v = b.load(I32, slot)  # read before any store
        b.ret(v)
        Mem2RegPass().run(m)
        verify_function(f)
        result = Interpreter(m).run("f", []).return_value
        assert result == 0  # undef reads as zero in the VM


class TestDiamond:
    def test_merge_requires_phi(self):
        m = Module("t")
        f = m.declare_function("f", I32, [("a", I32)])
        entry = f.add_block("entry")
        then = f.add_block("then")
        els = f.add_block("else")
        join = f.add_block("join")
        b = IRBuilder(entry)
        slot = b.alloca(I32)
        b.store(b.i32(0), slot)
        cond = b.icmp(ICmpPred.SGT, f.args[0], b.i32(0))
        b.condbr(cond, then, els)
        b.set_block(then)
        b.store(b.i32(10), slot)
        b.br(join)
        b.set_block(els)
        b.store(b.i32(20), slot)
        b.br(join)
        b.set_block(join)
        b.ret(b.load(I32, slot))
        Mem2RegPass().run(m)
        verify_function(f)
        assert len(join.phis()) == 1
        assert Interpreter(m).run("f", [5]).return_value == 10
        assert Interpreter(m).run("f", [-5]).return_value == 20
