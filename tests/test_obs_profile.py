"""Tests for the analysis layer over the span/metrics substrate:

- :mod:`repro.obs.profile` — profile tree, collapsed stacks, hot paths;
- :mod:`repro.obs.heat` — per-block heat annotations through the IR printer;
- :mod:`repro.obs.fidelity` — golden-reference comparison vs. the paper.
"""

import json
import math
from types import SimpleNamespace

import pytest

from repro import obs
from repro.obs.export import SpanRecord
from repro.obs.profile import build_profile


def rec(name, sid, parent, t0, t1, **attrs):
    return SpanRecord(
        name=name, span_id=sid, parent_id=parent, t0=t0, t1=t1, attrs=attrs
    )


def _sample_records():
    return [
        rec("pipeline", 1, None, 0.0, 10.0),
        rec("search", 2, 1, 0.0, 2.0),
        rec("cad.implement", 3, 1, 2.0, 9.0),
        rec("cad.map", 4, 3, 2.0, 5.0, virtual_seconds=100.0),
        rec("cad.par", 5, 3, 5.0, 9.0, virtual_seconds=200.0),
    ]


class TestProfileTree:
    def test_real_self_and_total(self):
        profile = build_profile(_sample_records())
        by_path = {n.path: n for n in profile.nodes()}
        root = by_path[("pipeline",)]
        assert root.total_real == pytest.approx(10.0)
        assert root.self_real == pytest.approx(1.0)  # 10 - (2 + 7)
        impl = by_path[("pipeline", "cad.implement")]
        assert impl.total_real == pytest.approx(7.0)
        assert impl.self_real == pytest.approx(0.0)

    def test_virtual_totals_inherit_from_children(self):
        profile = build_profile(_sample_records())
        by_path = {n.path: n for n in profile.nodes()}
        impl = by_path[("pipeline", "cad.implement")]
        # No virtual_seconds of its own: inherits 100 + 200 and keeps no self.
        assert impl.total_virtual == pytest.approx(300.0)
        assert impl.self_virtual == pytest.approx(0.0)
        assert by_path[("pipeline",)].total_virtual == pytest.approx(300.0)
        map_node = by_path[("pipeline", "cad.implement", "cad.map")]
        assert map_node.self_virtual == pytest.approx(100.0)

    def test_same_path_spans_aggregate(self):
        records = _sample_records() + [
            rec("cad.implement", 6, 1, 9.0, 9.5),
            rec("cad.map", 7, 6, 9.0, 9.5, virtual_seconds=50.0),
        ]
        profile = build_profile(records)
        by_path = {n.path: n for n in profile.nodes()}
        impl = by_path[("pipeline", "cad.implement")]
        assert impl.count == 2
        assert impl.total_virtual == pytest.approx(350.0)
        map_node = by_path[("pipeline", "cad.implement", "cad.map")]
        assert map_node.count == 2
        assert map_node.self_virtual == pytest.approx(150.0)

    def test_orphan_parent_becomes_root(self):
        profile = build_profile([rec("lonely", 1, 99, 0.0, 1.0)])
        paths = [n.path for n in profile.nodes()]
        assert paths == [("lonely",)]

    def test_collapsed_stacks_skip_zero_self(self):
        profile = build_profile(_sample_records())
        virtual = profile.collapsed("virtual")
        assert virtual == [
            "pipeline;cad.implement;cad.map 100000000",
            "pipeline;cad.implement;cad.par 200000000",
        ]
        real = dict(
            line.rsplit(" ", 1) for line in profile.collapsed("real")
        )
        assert real["pipeline"] == str(int(1.0 * 1e6))
        assert "pipeline;cad.implement" not in real  # zero self time

    def test_unknown_clock_rejected(self):
        profile = build_profile(_sample_records())
        with pytest.raises(ValueError):
            profile.collapsed("cpu")
        with pytest.raises(ValueError):
            profile.hot_table(clock="wall")

    def test_hot_table_and_tree_render(self):
        profile = build_profile(_sample_records())
        table = profile.hot_table(clock="virtual", top=2).render()
        assert "cad.par" in table and "cad.map" in table
        assert "Hot paths (virtual time)" in table
        tree = profile.render(clock="real")
        assert "pipeline" in tree and "search" in tree

    def test_empty_trace(self):
        profile = build_profile([])
        assert list(profile.nodes()) == []
        assert profile.collapsed("real") == []
        assert profile.total("virtual") == 0.0

    def _overlapping_records(self):
        # Two concurrent children (parallel CAD workers) sum to 12 s of
        # child time inside a 7 s parent: self-time clamps to zero and
        # the node is flagged as overlapping.
        return [
            rec("pipeline", 1, None, 0.0, 8.0),
            rec("cad.implement", 2, 1, 1.0, 8.0),
            rec("cad.par", 3, 2, 1.0, 7.0, virtual_seconds=10.0),
            rec("cad.par", 4, 2, 2.0, 8.0, virtual_seconds=10.0),
        ]

    def test_overlapping_siblings_flagged_and_clamped(self):
        profile = build_profile(self._overlapping_records())
        by_path = {n.path: n for n in profile.nodes()}
        impl = by_path[("pipeline", "cad.implement")]
        assert impl.overlap
        assert impl.self_real == pytest.approx(0.0)
        # Sequential children never trip the flag.
        seq = build_profile(_sample_records())
        assert not any(n.overlap for n in seq.nodes())

    def test_overlap_marker_in_renderings(self):
        profile = build_profile(self._overlapping_records())
        tree = profile.render(clock="real")
        assert "!overlap" in tree
        table = profile.hot_table(clock="real").render()
        assert "cad.implement !" in table
        assert "overlapping children" in table
        # The marker (and legend) is a real-clock concept only.
        virtual_table = profile.hot_table(clock="virtual").render()
        assert "!" not in virtual_table
        assert "!overlap" not in profile.render(clock="virtual")


@pytest.fixture(scope="module")
def sor_trace_records():
    """Spans of one end-to-end JIT run of the sor app."""
    from repro.apps import compile_app, get_app
    from repro.core import JitIseSystem

    old = obs.get_tracer()
    tracer = obs.Tracer(enabled=True)
    obs.set_tracer(tracer)
    try:
        spec = get_app("sor")
        compiled = compile_app(spec)
        JitIseSystem().run_application(
            compiled.compilation,
            dataset_size=spec.train.size,
            dataset_seed=spec.train.seed,
        )
    finally:
        obs.set_tracer(old)
    return obs.tracer_records(tracer)


class TestPipelineProfile:
    """Acceptance: the collapsed-stack export of a pipeline run carries one
    frame per Table III CAD stage, with virtual self-times summing to the
    stage-table totals within rounding."""

    def test_cad_stage_frames_match_stage_table(self, sor_trace_records):
        records = sor_trace_records
        profile = build_profile(records)
        lines = profile.collapsed("virtual")
        frame_sums = {}
        for line in lines:
            path, value = line.rsplit(" ", 1)
            leaf = path.split(";")[-1]
            frame_sums[leaf] = frame_sums.get(leaf, 0) + int(value)
        # Expected: the per-stage virtual totals the ASCII stage table shows.
        for stage in obs.TABLE3_SPAN_NAMES:
            expected = sum(
                r.virtual_seconds
                for r in records
                if r.name == stage and r.virtual_seconds is not None
            )
            assert expected > 0
            assert stage in frame_sums, f"missing collapsed frame for {stage}"
            assert frame_sums[stage] / 1e6 == pytest.approx(
                expected, abs=1e-3
            )

    def test_profile_totals_cover_the_run(self, sor_trace_records):
        profile = build_profile(sor_trace_records)
        # Real clock: self times decompose the root total exactly.
        assert profile.self_total("real") == pytest.approx(
            profile.total("real"), rel=1e-4
        )
        table = profile.hot_table(clock="virtual", top=5).render()
        assert "cad.par" in table


class TestHeat:
    @pytest.fixture(scope="class")
    def sor_heat(self):
        from repro.apps import compile_app, get_app
        from repro.obs.heat import compute_heat

        spec = get_app("sor")
        compiled = compile_app(spec)
        profile = compiled.run(spec.train).profile
        return compiled.module, profile, compute_heat(compiled.module, profile)

    def test_every_module_block_present(self, sor_heat):
        module, _profile, heat = sor_heat
        n_blocks = sum(len(f.blocks) for f in module.defined_functions())
        assert len(heat.blocks) == n_blocks

    def test_shares_sum_to_one(self, sor_heat):
        _module, _profile, heat = sor_heat
        assert sum(b.share for b in heat.blocks.values()) == pytest.approx(1.0)
        assert heat.total_cycles > 0

    def test_kernel_flags_match_kernel_analysis(self, sor_heat):
        _module, _profile, heat = sor_heat
        flagged = {b.key for b in heat.blocks.values() if b.in_kernel}
        assert flagged == heat.kernel.block_set
        assert flagged  # sor has a hot kernel
        for key in flagged:
            assert key in heat.kernel  # KernelAnalysis.__contains__

    def test_kernel_share_meets_threshold(self, sor_heat):
        _module, _profile, heat = sor_heat
        kernel_share = sum(
            b.share for b in heat.blocks.values() if b.in_kernel
        )
        assert kernel_share >= 0.90
        assert kernel_share * 100 == pytest.approx(
            heat.kernel.freq_pct, abs=0.1
        )

    def test_annotated_listing(self, sor_heat):
        module, _profile, heat = sor_heat
        from repro.obs.heat import render_heat

        text = render_heat(module, heat)
        assert "[kernel]" in text
        assert "% time" in text
        assert "; cold" in text or "cold" not in text  # cold only as comment
        assert "define" in text  # IR listing present
        # The summary header mirrors Table I's kernel size/freq columns.
        assert f"size {heat.kernel.size_pct:.1f}%" in text
        assert f"freq {heat.kernel.freq_pct:.1f}%" in text

    def test_single_function_filter(self, sor_heat):
        module, _profile, heat = sor_heat
        from repro.obs.heat import render_heat

        text = render_heat(module, heat, function="sor_sweep")
        assert "@sor_sweep" in text and "@main" not in text
        with pytest.raises(KeyError):
            render_heat(module, heat, function="nope")

    def test_printer_annotate_hook(self):
        from repro.frontend.compiler import compile_source
        from repro.ir.printer import print_function, print_module

        module = compile_source("int main() { return 3; }").module
        func = module.functions["main"]
        notes = print_function(func, annotate=lambda f, b: f"{f}.{b}")
        assert "; main.entry" in notes
        assert print_function(func, annotate=lambda f, b: None) == print_function(func)
        assert "; main.entry" in print_module(module, annotate=lambda f, b: f"{f}.{b}")


def _stage_times(**overrides):
    from repro.fpga.timingmodel import StageTimes

    values = dict(
        c2v=3.22, syn=4.22, xst=10.60, tra=8.99,
        map=100.0, par=200.0, bitgen=151.00,
    )
    values.update(overrides)
    return StageTimes(**values)


def _fake_analysis(
    name="fake", domain="embedded", times=None, candidates=3,
    break_even=3000.0, kernel_freq=95.0, search_seconds=0.002,
):
    times = times or _stage_times()
    impls = [SimpleNamespace(times=times) for _ in range(candidates)]
    return SimpleNamespace(
        name=name,
        domain=domain,
        specialization=SimpleNamespace(
            implementations=impls,
            candidate_count=candidates,
            const_seconds=times.constant_sum * candidates,
            toolflow_seconds=times.total * candidates,
        ),
        kernel=SimpleNamespace(freq_pct=kernel_freq, size_pct=20.0),
        search_pruned=SimpleNamespace(search_seconds=search_seconds),
        runtime=SimpleNamespace(ratio=1.05),
        asip_max=SimpleNamespace(ratio=2.5),
        asip_pruned=SimpleNamespace(ratio=2.4),
        breakeven=SimpleNamespace(live_aware_seconds=break_even),
    )


class TestFidelityChecks:
    def test_calibrated_run_passes(self):
        from repro.obs.fidelity import fidelity_from_analyses

        report = fidelity_from_analyses([_fake_analysis()], domain="embedded")
        assert report.ok
        assert report.failures == []
        assert report.apps == ["fake"]
        checked = {(c.table, c.row, c.column) for c in report.checked}
        assert ("III", "Average", "Bitgen") in checked
        assert ("III", "Average", "Sum") in checked

    def test_drifted_stage_fails_its_cell(self):
        from repro.obs.fidelity import fidelity_from_analyses

        bad = _fake_analysis(times=_stage_times(bitgen=400.0))
        report = fidelity_from_analyses([bad], domain="embedded")
        assert not report.ok
        failed = {(c.row, c.column) for c in report.failures}
        assert ("Average", "Bitgen") in failed
        assert ("Average", "Sum") in failed

    def test_bound_modes(self):
        from repro.obs.fidelity import fidelity_from_analyses

        slow_search = _fake_analysis(search_seconds=0.5)  # not milliseconds
        report = fidelity_from_analyses([slow_search], domain="embedded")
        assert any(
            c.column == "search [s]" and c.passed is False
            for c in report.checked
        )
        late = _fake_analysis(break_even=10 * 3600.0)  # over two hours
        report = fidelity_from_analyses([late], domain="embedded")
        assert any(
            c.column == "break even [s]" and c.passed is False
            for c in report.cells
        )

    def test_info_cells_never_fail(self):
        from repro.obs.fidelity import fidelity_from_analyses

        report = fidelity_from_analyses(
            [_fake_analysis(break_even=math.inf, kernel_freq=99.0)],
            domain="embedded",
        )
        info = [c for c in report.cells if c.mode == "info"]
        assert info and all(c.passed is None for c in info)
        # Infinite break-even: info cell records it, bound cell fails.
        be = next(c for c in report.cells if c.column == "break even [s]")
        assert be.passed is False

    def test_report_json_round_trip(self, tmp_path):
        from repro.obs.fidelity import fidelity_from_analyses

        report = fidelity_from_analyses([_fake_analysis()], domain="embedded")
        path = tmp_path / "BENCH_fidelity_test.json"
        report.write(path)
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-fidelity/1"
        assert doc["ok"] is True
        assert doc["failed"] == 0
        assert doc["checked"] == len(report.checked)
        by_cell = {
            (c["table"], c["row"], c["column"]): c for c in doc["cells"]
        }
        bitgen = by_cell[("III", "Average", "Bitgen")]
        assert bitgen["passed"] is True
        assert bitgen["rel_error"] == pytest.approx(151.0 / 151.0 - 1.0, abs=1e-6)

    def test_render_lists_every_cell(self):
        from repro.obs.fidelity import fidelity_from_analyses

        report = fidelity_from_analyses([_fake_analysis()], domain="embedded")
        text = report.render()
        assert "pass" in text and "info" in text
        assert f"{len(report.cells)} cells" in text

    def test_unknown_domain_rejected(self):
        from repro.obs.fidelity import run_fidelity

        with pytest.raises(ValueError):
            run_fidelity(domain="bogus")


class TestFidelityEndToEnd:
    """Acceptance: `repro fidelity` over the 4 embedded apps — every checked
    Table III cell within tolerance of the paper's constants."""

    def test_embedded_suite_matches_paper(self, tmp_path):
        from repro.obs.fidelity import run_fidelity

        out = tmp_path / "BENCH_fidelity_embedded.json"
        report = run_fidelity(domain="embedded", out=out)
        assert sorted(report.apps) == ["adpcm", "fft", "sor", "whetstone"]
        table3 = [c for c in report.checked if c.table == "III"]
        assert len(table3) >= 7  # five means + sum + bitgen share
        for cell in table3:
            assert cell.passed, (
                f"Table III {cell.row}/{cell.column}: expected "
                f"{cell.expected}, got {cell.actual}"
            )
        assert report.ok
        assert report.wall_seconds > 0
        doc = json.loads(out.read_text())
        assert doc["ok"] is True and doc["wall_seconds"] > 0

    def test_runner_emits_fidelity_report(self, tmp_path):
        from repro.experiments.runner import analyze_suite

        out = tmp_path / "BENCH_suite.json"
        analyses = analyze_suite("embedded", fidelity_out=out)
        assert len(analyses) == 4
        doc = json.loads(out.read_text())
        assert doc["domain"] == "embedded"
        assert doc["ok"] is True
