"""Tests for MiniC codegen: language semantics via compile-and-run."""

import pytest

from repro.frontend import CompileError, compile_source
from repro.vm import Interpreter

from conftest import run_main


class TestArithmeticSemantics:
    def test_integer_division_truncates(self):
        assert run_main("int main() { return -7 / 2; }").return_value == -3

    def test_modulo_sign(self):
        assert run_main("int main() { return -7 % 3; }").return_value == -1

    def test_int_overflow_wraps(self):
        r = run_main("int main() { int x = 2147483647; return x + 1; }")
        assert r.return_value == -(2**31)

    def test_shifts(self):
        assert run_main("int main() { return (1 << 10) >> 3; }").return_value == 128
        assert run_main("int main() { return -16 >> 2; }").return_value == -4

    def test_bitwise(self):
        assert run_main("int main() { return (12 & 10) | (1 ^ 3); }").return_value == 10

    def test_long_arithmetic(self):
        src = """
int main() {
    long a = 3000000000;
    long b = a * 2;
    print_i64(b);
    return (int)(b % 1000);
}
"""
        r = run_main(src)
        assert r.output[0] == 6000000000
        assert r.return_value == 0

    def test_mixed_int_double_promotion(self):
        src = "int main() { double d = 3 / 2.0; print_f64(d); return 0; }"
        assert run_main(src).output[0] == 1.5

    def test_float_truncation_on_assignment(self):
        src = "int main() { int i = 7.9; return i; }"
        assert run_main(src).return_value == 7

    def test_unary_ops(self):
        assert run_main("int main() { return !0 + !5 * 10 + ~0; }").return_value == 0
        assert run_main("int main() { return -(-5); }").return_value == 5


class TestControlFlow:
    def test_short_circuit_and(self):
        src = """
int calls = 0;
int bump() { calls++; return 1; }
int main() { int r = 0 && bump(); return calls * 10 + r; }
"""
        assert run_main(src).return_value == 0

    def test_short_circuit_or(self):
        src = """
int calls = 0;
int bump() { calls++; return 0; }
int main() { int r = 1 || bump(); return calls * 10 + r; }
"""
        assert run_main(src).return_value == 1

    def test_ternary(self):
        assert run_main("int main() { return 3 > 2 ? 10 : 20; }").return_value == 10

    def test_break_continue(self):
        src = """
int main() {
    int acc = 0;
    for (int i = 0; i < 100; i++) {
        if (i % 2 == 0) continue;
        if (i > 10) break;
        acc += i;
    }
    return acc;
}
"""
        assert run_main(src).return_value == 1 + 3 + 5 + 7 + 9

    def test_nested_loops_with_break(self):
        src = """
int main() {
    int acc = 0;
    for (int i = 0; i < 5; i++)
        for (int j = 0; j < 5; j++) {
            if (j > i) break;
            acc++;
        }
    return acc;
}
"""
        assert run_main(src).return_value == 1 + 2 + 3 + 4 + 5

    def test_while_with_compound_condition(self):
        src = """
int main() {
    int i = 0; int j = 20;
    while (i < 10 && j > 15) { i++; j--; }
    return i * 100 + j;
}
"""
        assert run_main(src).return_value == 5 * 100 + 15

    def test_recursion(self):
        src = """
int ack(int m, int n) {
    if (m == 0) return n + 1;
    if (n == 0) return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
}
int main() { return ack(2, 3); }
"""
        assert run_main(src).return_value == 9

    def test_implicit_return_zero(self):
        assert run_main("int main() { int x = 5; }").return_value == 0


class TestArraysAndPointers:
    def test_local_array(self):
        src = """
int main() {
    int a[10];
    for (int i = 0; i < 10; i++) a[i] = i * i;
    return a[7];
}
"""
        assert run_main(src).return_value == 49

    def test_global_array_initializer(self):
        src = """
int table[5] = {10, 20, 30, 40, 50};
int main() { return table[0] + table[4]; }
"""
        assert run_main(src).return_value == 60

    def test_array_decay_to_pointer_param(self):
        src = """
int sum(int* p, int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) acc += p[i];
    return acc;
}
int main() {
    int a[4];
    a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
    return sum(a, 4);
}
"""
        assert run_main(src).return_value == 10

    def test_pointer_arithmetic(self):
        src = """
int main() {
    int a[4];
    a[0] = 5; a[1] = 6; a[2] = 7; a[3] = 8;
    int* p = a + 1;
    return p[0] * 10 + (p + 2)[0];
}
"""
        assert run_main(src).return_value == 68

    def test_malloc(self):
        src = """
int main() {
    double* buf = (double*)malloc((long)64);
    for (int i = 0; i < 8; i++) buf[i] = (double)i * 0.5;
    double s = 0.0;
    for (int i = 0; i < 8; i++) s += buf[i];
    return (int)s;
}
"""
        assert run_main(src).return_value == 14

    def test_global_scalar_mutation(self):
        src = """
int counter = 100;
void bump(int by) { counter += by; }
int main() { bump(5); bump(7); return counter; }
"""
        assert run_main(src).return_value == 112

    def test_incdec_on_array_elements(self):
        src = """
int main() {
    int a[2];
    a[0] = 5; a[1] = 10;
    a[0]++;
    --a[1];
    return a[0] * 100 + a[1];
}
"""
        assert run_main(src).return_value == 609


class TestIntrinsics:
    def test_math(self):
        r = run_main(
            "int main() { print_f64(sqrt(16.0)); print_f64(fabs(-2.5)); return 0; }"
        )
        assert r.output == [4.0, 2.5]

    def test_deterministic_rand(self):
        src = """
int main() {
    srand(42);
    int a = rand();
    srand(42);
    int b = rand();
    return a == b ? 1 : 0;
}
"""
        assert run_main(src).return_value == 1

    def test_dataset_intrinsics(self):
        src = "int main() { return dataset_size() * 1000 + dataset_seed(); }"
        r = run_main(src, dataset_size=12, seed=34)
        assert r.return_value == 12034


class TestDiagnostics:
    @pytest.mark.parametrize(
        "source,pattern",
        [
            ("int main() { return x; }", "undeclared"),
            ("int main() { int a; int a; return 0; }", "redeclaration"),
            ("int main() { return f(); }", "unknown function"),
            ("int f(int a) { return a; } int main() { return f(); }", "expects 1"),
            ("void v() {} int main() { int x = 1 + 0; v(); return v() + x; }", "void"),
            ("int main() { break; }", "outside of loop"),
            ("double d; int main() { int* p = d; return 0; }", "convert"),
            ("int main() { double d = 1.0; return d[0]; }", "non-pointer"),
            ("void f() { return 1; } int main() { return 0; }", "void function"),
            ("int f() { return; } int main() { return 0; }", "without value"),
        ],
    )
    def test_semantic_errors(self, source, pattern):
        with pytest.raises(CompileError, match=pattern):
            compile_source(source)

    def test_loc_counting(self):
        from repro.frontend.compiler import count_loc

        src = "int x;\n\n// comment\n/* block\n   comment */\nint y; // trailing\n"
        assert count_loc(src) == 2
